package vulndb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseBanner(t *testing.T) {
	cases := []struct {
		banner string
		want   Version
		ok     bool
	}{
		{"BIND 8.2.4", V(8, 2, 4), true},
		{"8.2.4", V(8, 2, 4), true},
		{"named 8.3.1", V(8, 3, 1), true},
		{"BIND 8.2.2-P5", VP(8, 2, 2, 5), true},
		{"bind 8.2.2-p7", VP(8, 2, 2, 7), true},
		{"BIND 4.9.6-REL", V(4, 9, 6), true},
		{"9.2.0", V(9, 2, 0), true},
		{"BIND 9.2.3rc2", Version{Major: 9, Minor: 2, Patch: 3, Pre: true}, true},
		{"BIND 9.2", V(9, 2, 0), true},
		{"BIND 8.2.4 (Red Hat)", V(8, 2, 4), true},
		{"", Version{}, false},
		{"refused", Version{}, false},
		{"surely you must be joking", Version{}, false},
		{"dnsmasq-2.4", Version{}, false},
		{"Microsoft DNS 5.0.49664", Version{}, false}, // major 5 is not BIND
		{"BIND x.y.z", Version{}, false},
	}
	for _, c := range cases {
		got, ok := ParseBanner(c.banner)
		if ok != c.ok {
			t.Errorf("ParseBanner(%q) ok = %v, want %v", c.banner, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		got.Raw = ""
		if got != c.want {
			t.Errorf("ParseBanner(%q) = %+v, want %+v", c.banner, got, c.want)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	ordered := []Version{
		V(4, 9, 1),
		V(4, 9, 11),
		V(8, 2, 2),
		VP(8, 2, 2, 1),
		VP(8, 2, 2, 7),
		{Major: 8, Minor: 2, Patch: 3, Pre: true},
		V(8, 2, 3),
		V(8, 2, 4),
		V(9, 2, 0),
		V(9, 2, 1),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	gen := func(r *rand.Rand) Version {
		v := Version{
			Major: []int{4, 8, 9}[r.Intn(3)],
			Minor: r.Intn(10), Patch: r.Intn(12),
		}
		if r.Intn(3) == 0 {
			v.PatchLevel = 1 + r.Intn(7)
		}
		if r.Intn(5) == 0 {
			v.Pre = true
		}
		return v
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		return a.Compare(b) == -b.Compare(a) && a.Compare(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaperFBIExample pins the paper's §3.2 running example: BIND 8.2.4
// (reston-ns2.telemail.net) has exactly the four named exploits.
func TestPaperFBIExample(t *testing.T) {
	db := Default()
	vulns := db.VulnsForBanner("BIND 8.2.4")
	var names []string
	for _, v := range vulns {
		names = append(names, v.Name)
	}
	want := []string{"DoS multi", "libbind", "negcache", "sigrec"}
	sort.Strings(names)
	if len(names) != len(want) {
		t.Fatalf("BIND 8.2.4 matches %v, want exactly %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BIND 8.2.4 matches %v, want %v", names, want)
		}
	}
}

func TestKnownSafeVersions(t *testing.T) {
	db := Default()
	for _, banner := range []string{
		"BIND 8.2.7", "BIND 8.3.4", "BIND 8.4.4",
		"BIND 9.2.2", "BIND 9.2.3", "BIND 9.3.0",
		"BIND 4.9.11",
	} {
		if db.IsVulnerable(banner) {
			t.Errorf("%s should be safe in the Feb-2004 matrix, matched %v",
				banner, db.VulnsForBanner(banner))
		}
	}
}

func TestKnownVulnerableVersions(t *testing.T) {
	db := Default()
	cases := map[string]string{
		"BIND 8.2.2-P5": "zxfr",
		"BIND 8.2.3":    "tsig",
		"BIND 8.2.1":    "nxt",
		"BIND 4.9.5":    "sigdiv0",
		"BIND 9.2.0":    "bind9 rdataset",
		"BIND 9.2.1":    "bind9 negcache",
		"BIND 4.9.0":    "bind4 q_usedns",
	}
	for banner, wantVuln := range cases {
		vulns := db.VulnsForBanner(banner)
		found := false
		for _, v := range vulns {
			if v.Name == wantVuln {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want %q among matches, got %v", banner, wantVuln, vulns)
		}
	}
}

func TestHiddenBannersAreSafe(t *testing.T) {
	db := Default()
	for _, banner := range []string{"", "refused", "none of your business", "9 to 5"} {
		if db.IsVulnerable(banner) {
			t.Errorf("hidden banner %q must be optimistically safe", banner)
		}
	}
}

func TestCompromisable(t *testing.T) {
	db := Default()
	cases := map[string]bool{
		"BIND 8.2.4":    true,  // libbind/sigrec are exec-class
		"BIND 9.2.0":    false, // only the rdataset DoS
		"BIND 9.2.1":    false, // only the negcache DoS
		"BIND 8.2.7":    false, // safe
		"hidden banner": false,
	}
	for banner, want := range cases {
		if got := db.Compromisable(banner); got != want {
			t.Errorf("Compromisable(%q) = %v, want %v", banner, got, want)
		}
	}
}

func TestAttackClassString(t *testing.T) {
	for c, want := range map[AttackClass]string{
		ClassExec: "remote-exec", ClassPoison: "cache-poison", ClassDoS: "denial-of-service",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestDBAllSortedAndImmutable(t *testing.T) {
	db := Default()
	all := db.All()
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name < all[j].Name }) {
		t.Error("All() not sorted by name")
	}
	if db.Len() < 15 {
		t.Errorf("matrix has %d entries, expected the full historical set", db.Len())
	}
	all[0].Name = "mutated"
	if db.All()[0].Name == "mutated" {
		t.Error("All() must return a copy")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{V(8, 2, 0), VP(8, 2, 6, 999)}
	for v, want := range map[Version]bool{
		V(8, 2, 0):     true,
		V(8, 2, 6):     true,
		VP(8, 2, 6, 7): true,
		V(8, 2, 7):     false,
		V(8, 1, 9):     false,
		V(9, 2, 0):     false,
	} {
		if got := r.Contains(v); got != want {
			t.Errorf("Contains(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestVersionString(t *testing.T) {
	if got := V(8, 2, 4).String(); got != "8.2.4" {
		t.Errorf("String() = %q", got)
	}
	if got := VP(8, 2, 2, 5).String(); got != "8.2.2-P5" {
		t.Errorf("String() = %q", got)
	}
	v, _ := ParseBanner("BIND 8.2.4 (custom)")
	if v.String() != "8.2.4" {
		t.Errorf("parsed String() = %q, want raw substring", v.String())
	}
}
