// Package snapshot implements the versioned, checksummed binary
// container the epoch store persists itself into: a flat sequence of
// named sections laid out for mmap loading. Records are little-endian
// and fixed-width, every array section starts 8-byte aligned, and ids
// are position-independent (int32 indices into sibling sections), so a
// loader can point slices straight into the mapped file with no pointer
// fixups — restart cost is mapping the file plus rebuilding the hash
// indexes, not re-crawling or replaying a query log.
//
// File layout (all integers little-endian):
//
//	header   magic[8] version:u32 reserved:u32
//	...sections, each padded to an 8-byte boundary...
//	table    count:u64 then per section
//	         {off:u64 len:u64 crc:u32 nameLen:u32 name... pad to 8}
//	trailer  tableOff:u64 tableLen:u64 tableCRC:u32 version:u32 magic[8]
//
// The trailer is written last: a file missing or corrupting it is
// detected as truncated, so a snapshot interrupted mid-write (even one
// that bypassed the atomic-rename path) can never load. Section payloads
// and the section table carry CRC-32C checksums, verified on open; a
// flipped byte anywhere fails closed with ErrChecksum. A file whose
// header announces a version newer than this package understands fails
// with *VersionError before anything else is interpreted.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a snapshot file; it is written at both ends.
const Magic = "DNSTSNP\x00"

// Version is the current format version. Readers reject files announcing
// a newer version (fail closed: a future layout must not be guessed at).
const Version = 1

const (
	headerSize  = 16
	trailerSize = 32
)

// Typed failure modes, distinguishable with errors.Is / errors.As.
var (
	// ErrFormat marks a file that is not a snapshot at all (bad magic).
	ErrFormat = errors.New("snapshot: not a snapshot file")
	// ErrTruncated marks a snapshot cut short: the trailer is missing or
	// damaged, or the section table points past the end of the file.
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrChecksum marks payload corruption: a section or the section
	// table no longer matches its recorded CRC-32C.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt marks a structurally invalid section table (overlapping
	// or out-of-order entries, impossible lengths) whose checksums
	// nevertheless pass — fails closed rather than guessing.
	ErrCorrupt = errors.New("snapshot: corrupt section table")
)

// VersionError reports a snapshot written by a future format version.
type VersionError struct {
	Got  uint32
	Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: file version %d newer than supported version %d", e.Got, e.Want)
}

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// le is the file byte order.
var le = binary.LittleEndian

// section is one parsed section-table entry.
type section struct {
	name string
	off  uint64
	len  uint64
	crc  uint32
}

// pad8 returns the bytes needed to advance n to an 8-byte boundary.
func pad8(n uint64) uint64 { return (8 - n%8) % 8 }

// parseTable decodes and validates a section table (already
// CRC-verified) against the total file size. It is the decoder the fuzz
// target drives: every offset and length is bounds-checked before use.
func parseTable(table []byte, fileSize uint64) ([]section, error) {
	if len(table) < 8 {
		return nil, fmt.Errorf("%w: table shorter than its count", ErrCorrupt)
	}
	count := le.Uint64(table)
	table = table[8:]
	// Each entry is at least 24 bytes; a count implying more than the
	// remaining table bytes is corrupt, and also guards the allocation.
	if count > uint64(len(table))/24 {
		return nil, fmt.Errorf("%w: %d sections in a %d-byte table", ErrCorrupt, count, len(table)+8)
	}
	secs := make([]section, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(table) < 24 {
			return nil, fmt.Errorf("%w: table ends inside entry %d", ErrCorrupt, i)
		}
		s := section{
			off: le.Uint64(table),
			len: le.Uint64(table[8:]),
			crc: le.Uint32(table[16:]),
		}
		nameLen := uint64(le.Uint32(table[20:]))
		table = table[24:]
		if nameLen == 0 || nameLen > 255 || nameLen > uint64(len(table)) {
			return nil, fmt.Errorf("%w: entry %d has name length %d", ErrCorrupt, i, nameLen)
		}
		s.name = string(table[:nameLen])
		skip := nameLen + pad8(24+nameLen)
		if skip > uint64(len(table)) {
			return nil, fmt.Errorf("%w: table ends inside entry %d padding", ErrCorrupt, i)
		}
		table = table[skip:]
		if s.off < headerSize || s.off%8 != 0 || s.off > fileSize || s.len > fileSize-s.off {
			return nil, fmt.Errorf("%w: section %q spans [%d, %d) of a %d-byte file",
				ErrTruncated, s.name, s.off, s.off+s.len, fileSize)
		}
		secs = append(secs, s)
	}
	return secs, nil
}
