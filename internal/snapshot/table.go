package snapshot

import (
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// WriteStringTable emits a string table into the open section: count,
// cumulative end offsets, then the concatenated bytes. SectionReader
// loads it back as zero-copy views into the section.
func WriteStringTable(w *Writer, strs []string) error {
	w.U64(uint64(len(strs)))
	var end uint64
	for _, s := range strs {
		end += uint64(len(s))
		if end > math.MaxUint32 {
			return errors.New("snapshot: string table exceeds 4 GiB")
		}
		w.U32(uint32(end))
	}
	w.Pad8()
	for _, s := range strs {
		if _, err := w.Write([]byte(s)); err != nil {
			return err
		}
	}
	w.Pad8()
	return w.Err()
}

// SectionReader is a bounds-checked cursor over one section's payload
// with a sticky error, mirroring the Writer's assignment-shaped style.
// All failure modes wrap ErrCorrupt: the section's checksum passed, but
// its contents do not decode consistently.
type SectionReader struct {
	sec string
	b   []byte
	off int
	err error
}

// NewSectionReader positions a cursor at the start of the named section;
// a missing section is an immediate (sticky) error.
func NewSectionReader(f *File, sec string) *SectionReader {
	b := f.Section(sec)
	d := &SectionReader{sec: sec, b: b}
	if b == nil {
		d.err = fmt.Errorf("%w: section %q missing", ErrCorrupt, sec)
	}
	return d
}

// Err reports the sticky decode error, if any.
func (d *SectionReader) Err() error { return d.err }

// Fail records a decode failure with section and offset context; the
// first failure sticks.
func (d *SectionReader) Fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s: %s at byte %d", ErrCorrupt, d.sec, msg, d.off)
	}
}

// Take consumes the next n bytes and returns them as a capped view.
func (d *SectionReader) Take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.Fail("section too short")
		return nil
	}
	p := d.b[:n:n]
	d.b = d.b[n:]
	d.off += n
	return p
}

// Pad8 skips to the next 8-byte boundary relative to the section start
// (sections start 8-aligned in the file, so this matches Writer.Pad8).
func (d *SectionReader) Pad8() { d.Take(int(pad8(uint64(d.off)))) }

// U32 reads one little-endian uint32.
func (d *SectionReader) U32() uint32 {
	p := d.Take(4)
	if p == nil {
		return 0
	}
	return le.Uint32(p)
}

// U64 reads one little-endian uint64.
func (d *SectionReader) U64() uint64 {
	p := d.Take(8)
	if p == nil {
		return 0
	}
	return le.Uint64(p)
}

// I64 reads one little-endian int64.
func (d *SectionReader) I64() int64 { return int64(d.U64()) }

// Int reads a u64 scalar (a dimension, not an in-section element count)
// that must fit comfortably in an int.
func (d *SectionReader) Int() int {
	v := d.U64()
	if d.err == nil && v > math.MaxInt32 {
		d.Fail("dimension out of range")
		return 0
	}
	return int(v)
}

// Count reads a u64 element count and sanity-checks it against the
// remaining section bytes at elemSize bytes per element, guarding the
// allocations sized from it.
func (d *SectionReader) Count(elemSize int) int {
	v := d.U64()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b))/uint64(elemSize) {
		d.Fail("count exceeds section size")
		return 0
	}
	return int(v)
}

// I32s returns the next n int32s as a (zero-copy on little-endian
// hosts) view.
func (d *SectionReader) I32s(n int) []int32 {
	return I32View(d.Take(4 * n))
}

// I64s returns the next n int64s as a view; the cursor must be
// 8-aligned.
func (d *SectionReader) I64s(n int) []int64 {
	return I64View(d.Take(8 * n))
}

// Strings decodes a table written by WriteStringTable; the returned
// strings are zero-copy views into the section (and so into the mapping,
// when the file is mmapped — they are valid as long as the File is).
func (d *SectionReader) Strings() []string {
	n := d.Count(4)
	ends := d.Take(4 * n)
	d.Pad8()
	if d.err != nil {
		return nil
	}
	var total uint32
	if n > 0 {
		total = le.Uint32(ends[4*(n-1):])
	}
	blob := d.Take(int(total))
	d.Pad8()
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	var start uint32
	for i := range out {
		end := le.Uint32(ends[4*i:])
		if end < start || end > total {
			d.Fail("string offsets not monotonic")
			return nil
		}
		if end > start {
			out[i] = unsafe.String(&blob[start], int(end-start))
		}
		start = end
	}
	return out
}
