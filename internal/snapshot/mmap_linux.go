//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// mmap maps the whole file read-only. ok is false when mapping is not
// possible (empty file, exotic filesystem), sending Open down the
// read-into-memory fallback.
func mmap(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return b, func() error { return syscall.Munmap(b) }, true
}
