package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildValid writes a small multi-section snapshot and returns its bytes.
func buildValid(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("alpha")
	w.U64(3)
	w.I32s([]int32{10, -20, 30})
	w.Begin("beta/strings")
	w.Write([]byte("hello world"))
	w.Pad8()
	w.I64s([]int64{1 << 40, -9})
	w.Begin("gamma")
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildValid(t)
	f, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	a := f.Section("alpha")
	if a == nil {
		t.Fatal("missing section alpha")
	}
	if got := le.Uint64(a); got != 3 {
		t.Fatalf("alpha count = %d", got)
	}
	ids := I32View(a[8:])
	if len(ids) != 3 || ids[0] != 10 || ids[1] != -20 || ids[2] != 30 {
		t.Fatalf("alpha ids = %v", ids)
	}
	b := f.Section("beta/strings")
	if string(b[:11]) != "hello world" {
		t.Fatalf("beta prefix = %q", b[:11])
	}
	v := I64View(b[16:])
	if len(v) != 2 || v[0] != 1<<40 || v[1] != -9 {
		t.Fatalf("beta i64s = %v", v)
	}
	if g := f.Section("gamma"); g == nil || len(g) != 0 {
		t.Fatalf("gamma = %v", g)
	}
	if f.Section("nope") != nil {
		t.Fatal("unknown section returned data")
	}
}

func TestOpenMmapMatchesRead(t *testing.T) {
	data := buildValid(t)
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(data)) {
		t.Fatalf("size %d, want %d", f.Size(), len(data))
	}
	ids := I32View(f.Section("alpha")[8:])
	if len(ids) != 3 || ids[2] != 30 {
		t.Fatalf("alpha ids via Open = %v", ids)
	}
}

// TestCorruption is the fail-closed matrix: a truncated file, a flipped
// byte, and a future-version header must each return their typed error —
// never a panic, never a silently wrong load.
func TestCorruption(t *testing.T) {
	valid := buildValid(t)
	mangle := func(fn func([]byte) []byte) []byte {
		return fn(append([]byte(nil), valid...))
	}
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, ErrFormat},
		{"not a snapshot", []byte("GIF89a totally unrelated bytes here"), ErrFormat},
		{"magic prefix only", mangle(func(d []byte) []byte { return d[:5] }), ErrTruncated},
		{"header only", mangle(func(d []byte) []byte { return d[:headerSize] }), ErrTruncated},
		{"missing trailer", mangle(func(d []byte) []byte { return d[:len(d)-trailerSize] }), ErrTruncated},
		{"cut mid-section", mangle(func(d []byte) []byte { return d[:headerSize+10] }), ErrTruncated},
		{"cut mid-trailer", mangle(func(d []byte) []byte { return d[:len(d)-7] }), ErrTruncated},
		{"flipped section byte", mangle(func(d []byte) []byte {
			d[headerSize+2] ^= 0x40 // inside section "alpha"
			return d
		}), ErrChecksum},
		{"flipped table byte", mangle(func(d []byte) []byte {
			tableOff := le.Uint64(d[len(d)-trailerSize:])
			d[tableOff+9] ^= 0x01
			return d
		}), ErrChecksum},
		{"future version header", mangle(func(d []byte) []byte {
			le.PutUint32(d[8:], Version+1)
			return d
		}), &VersionError{}},
		{"future version trailer", mangle(func(d []byte) []byte {
			le.PutUint32(d[len(d)-trailerSize+20:], Version+7)
			return d
		}), &VersionError{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tt.data))
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			var ve *VersionError
			if errors.As(tt.want, &ve) {
				var got *VersionError
				if !errors.As(err, &got) {
					t.Fatalf("err = %v, want *VersionError", err)
				}
				return
			}
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
			// The same bytes must fail identically through the file path.
			path := filepath.Join(t.TempDir(), "bad.bin")
			if werr := os.WriteFile(path, tt.data, 0o644); werr != nil {
				t.Fatal(werr)
			}
			if _, oerr := Open(path); !errors.Is(oerr, tt.want) {
				t.Fatalf("Open err = %v, want %v", oerr, tt.want)
			}
		})
	}
}

func TestWriterRejectsBadSections(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write outside a section succeeded")
	}
	w = NewWriter(&bytes.Buffer{})
	w.Begin("")
	if w.Finish() == nil {
		t.Fatal("empty section name accepted")
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Begin("s")
	w.U64(1)
	if err := w.Finish(); err == nil {
		t.Fatal("write failure not surfaced by Finish")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }
