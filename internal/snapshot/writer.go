package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"
)

// Writer streams a snapshot file section by section. Usage:
//
//	w := snapshot.NewWriter(dst)
//	w.Begin("core/hosts")
//	w.U64(uint64(n))
//	w.I32s(ids)
//	w.Begin("core/zones")
//	...
//	err := w.Finish()
//
// Errors are sticky: any failed write poisons the Writer and Finish
// reports the first one, so encoding code can stay assignment-shaped.
type Writer struct {
	w   io.Writer
	off uint64
	err error

	secs []section
	cur  int    // index into secs of the open section, -1 when none
	crc  uint32 // running CRC of the open section
}

// NewWriter starts a snapshot stream on w, writing the header
// immediately.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w, cur: -1}
	var hdr [headerSize]byte
	copy(hdr[:], Magic)
	le.PutUint32(hdr[8:], Version)
	sw.raw(hdr[:])
	return sw
}

// raw writes p, tracking the global offset.
func (w *Writer) raw(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.off += uint64(n)
	w.err = err
}

var zeros [8]byte

// align8 pads the stream to an 8-byte boundary.
func (w *Writer) align8() {
	if p := pad8(w.off); p > 0 {
		w.raw(zeros[:p])
	}
}

// endSection records the open section's final length.
func (w *Writer) endSection() {
	if w.cur >= 0 {
		s := &w.secs[w.cur]
		s.len = w.off - s.off
		s.crc = w.crc
		w.cur = -1
	}
}

// Begin closes the current section (if any) and opens a new one. Section
// names must be unique, non-empty, and at most 255 bytes.
func (w *Writer) Begin(name string) {
	w.endSection()
	if w.err == nil && (name == "" || len(name) > 255) {
		w.err = fmt.Errorf("snapshot: invalid section name %q", name)
		return
	}
	w.align8()
	w.secs = append(w.secs, section{name: name, off: w.off})
	w.cur = len(w.secs) - 1
	w.crc = 0
}

// Write appends raw bytes to the open section (io.Writer).
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.cur < 0 {
		w.err = fmt.Errorf("snapshot: Write outside a section")
		return 0, w.err
	}
	w.crc = crc32.Update(w.crc, castagnoli, p)
	w.raw(p)
	if w.err != nil {
		return 0, w.err
	}
	return len(p), nil
}

// Pad8 pads the open section so the next write starts 8-byte aligned
// relative to the file (sections themselves always start aligned).
func (w *Writer) Pad8() {
	if p := pad8(w.off); p > 0 {
		w.Write(zeros[:p])
	}
}

// U32 writes one little-endian uint32.
func (w *Writer) U32(v uint32) {
	var b [4]byte
	le.PutUint32(b[:], v)
	w.Write(b[:])
}

// U64 writes one little-endian uint64.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	le.PutUint64(b[:], v)
	w.Write(b[:])
}

// I64 writes one little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// I32 writes one little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I32s writes a flat little-endian int32 array.
func (w *Writer) I32s(v []int32) {
	if len(v) == 0 {
		return
	}
	if nativeLE {
		w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
		return
	}
	for _, x := range v {
		w.I32(x)
	}
}

// I64s writes a flat little-endian int64 array.
func (w *Writer) I64s(v []int64) {
	if len(v) == 0 {
		return
	}
	if nativeLE {
		w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
		return
	}
	for _, x := range v {
		w.I64(x)
	}
}

// Err reports the sticky error, letting encoders bail out early.
func (w *Writer) Err() error { return w.err }

// Finish closes the last section and writes the section table and
// trailer. The Writer must not be used afterwards.
func (w *Writer) Finish() error {
	w.endSection()
	w.align8()
	tableOff := w.off

	// Encode the table into one buffer so it can be CRC'd as a unit.
	var table []byte
	var n8 [8]byte
	le.PutUint64(n8[:], uint64(len(w.secs)))
	table = append(table, n8[:]...)
	for _, s := range w.secs {
		var ent [24]byte
		le.PutUint64(ent[0:], s.off)
		le.PutUint64(ent[8:], s.len)
		le.PutUint32(ent[16:], s.crc)
		le.PutUint32(ent[20:], uint32(len(s.name)))
		table = append(table, ent[:]...)
		table = append(table, s.name...)
		table = append(table, zeros[:pad8(24+uint64(len(s.name)))]...)
	}
	w.raw(table)

	var tr [trailerSize]byte
	le.PutUint64(tr[0:], tableOff)
	le.PutUint64(tr[8:], uint64(len(table)))
	le.PutUint32(tr[16:], crc32.Checksum(table, castagnoli))
	le.PutUint32(tr[20:], Version)
	copy(tr[24:], Magic)
	w.raw(tr[:])
	return w.err
}
