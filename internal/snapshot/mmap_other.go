//go:build !linux

package snapshot

import "os"

// mmap is unavailable on this platform; Open falls back to reading the
// file into memory, which behaves identically (just without the shared
// page cache mapping).
func mmap(*os.File, int64) (data []byte, unmap func() error, ok bool) {
	return nil, nil, false
}
