package snapshot

import (
	"bytes"
	"testing"
)

func TestShardMetaRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("other")
	w.U64(7)
	want := ShardMeta{Shard: "shard-east-1", Generation: 42, CorpusHash: 0xdeadbeefcafef00d}
	if err := WriteShardMeta(w, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadShardMeta(f)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("shard/meta section not found after writing it")
	}
	if got != want {
		t.Fatalf("ReadShardMeta = %+v, want %+v", got, want)
	}
}

// TestShardMetaAbsent pins the compatibility contract: a snapshot
// without the optional section reads back as (zero, ok=false, nil
// error), not a decode failure.
func TestShardMetaAbsent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("other")
	w.U64(7)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := ReadShardMeta(f)
	if err != nil {
		t.Fatalf("absent shard/meta must not error, got %v", err)
	}
	if ok || m != (ShardMeta{}) {
		t.Fatalf("absent shard/meta read back as (%+v, %v), want zero and false", m, ok)
	}
}

func TestIDTableRoundTrip(t *testing.T) {
	shared := []int32{1, 2, 3}
	table := [][]int32{nil, {}, shared, shared, {9}}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("ids")
	WriteIDTable(w, table)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d := NewSectionReader(f, "ids")
	got := ReadIDTable(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(table) {
		t.Fatalf("table length %d, want %d", len(got), len(table))
	}
	if got[0] != nil {
		t.Fatalf("nil entry read back as %v", got[0])
	}
	if got[1] == nil || len(got[1]) != 0 {
		t.Fatalf("empty entry read back as %v", got[1])
	}
	for i := 2; i <= 3; i++ {
		if len(got[i]) != 3 || got[i][0] != 1 || got[i][2] != 3 {
			t.Fatalf("entry %d read back as %v", i, got[i])
		}
	}
	// Aliasing identity survives the round trip: both shared entries
	// must view the same pool run.
	if &got[2][0] != &got[3][0] {
		t.Fatal("aliased entries no longer share backing after round trip")
	}
	if len(got[4]) != 1 || got[4][0] != 9 {
		t.Fatalf("tail entry read back as %v", got[4])
	}
}
