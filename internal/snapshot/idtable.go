package snapshot

import "math"

// Id tables are the remap-friendly section encoding shared by the epoch
// store (core/chains, core/zonens, graph closures) and any reader that
// wants the raw id slices without reconstructing a store — the fleet
// coordinator decodes shard sections with ReadIDTable and remaps the
// ids into its own unioned intern space.
//
// Layout: table count, pool length, then (offset, length) entry pairs
// over one shared int32 pool. Entries that alias the same backing array
// in memory share one pool run, so aliasing structure (SCC closure
// sharing, per-chain TCB copy-on-write) survives the round trip.

const nilOff = math.MaxUint32

// WriteIDTable emits a table of id slices over one shared pool,
// deduplicating by backing identity.
func WriteIDTable(w *Writer, table [][]int32) {
	type sliceKey struct {
		p *int32
		n int
	}
	offs := make(map[sliceKey]uint32)
	var pool []int32
	ents := make([]int32, 0, 2*len(table))
	for _, s := range table {
		switch {
		case s == nil:
			ents = append(ents, -1, 0) // reads back as nilOff
		case len(s) == 0:
			ents = append(ents, 0, 0)
		default:
			k := sliceKey{&s[0], len(s)}
			o, ok := offs[k]
			if !ok {
				o = uint32(len(pool))
				offs[k] = o
				pool = append(pool, s...)
			}
			ents = append(ents, int32(o), int32(len(s)))
		}
	}
	w.U64(uint64(len(table)))
	w.U64(uint64(len(pool)))
	w.I32s(ents)
	w.I32s(pool)
	w.Pad8()
}

// ReadIDTable decodes a table written by WriteIDTable, rebuilding the
// aliasing structure: entries sharing a pool offset share one view.
func ReadIDTable(d *SectionReader) [][]int32 {
	n := d.Count(8)
	poolLen := d.Count(4)
	ents := d.I32s(2 * n)
	pool := d.I32s(poolLen)
	d.Pad8()
	if d.Err() != nil {
		return nil
	}
	out := make([][]int32, n)
	for i := range out {
		o, l := uint32(ents[2*i]), uint32(ents[2*i+1])
		switch {
		case o == nilOff:
		case l == 0:
			out[i] = []int32{}
		case uint64(o)+uint64(l) <= uint64(poolLen):
			out[i] = pool[o : o+l : o+l]
		default:
			d.Fail("id slice outside pool")
			return nil
		}
	}
	return out
}
