package snapshot

import "strings"

// ShardMetaSection is the optional section labeling a snapshot as one
// shard of a monitor fleet. Snapshots written without a shard name omit
// it entirely, so pre-fleet snapshots and readers are unaffected in both
// directions: old files load under new code (the section is optional)
// and new single-monitor files are byte-identical to old ones.
const ShardMetaSection = "shard/meta"

// ShardMeta identifies the shard a snapshot came from.
type ShardMeta struct {
	Shard      string // operator-assigned shard name
	Generation int64  // monitor generation the snapshot captures
	CorpusHash uint64 // FNV-1a over the shard's sorted resolved names
}

// WriteShardMeta appends a shard/meta section to an open snapshot
// writer.
func WriteShardMeta(w *Writer, m ShardMeta) error {
	w.Begin(ShardMetaSection)
	w.I64(m.Generation)
	w.U64(m.CorpusHash)
	if err := WriteStringTable(w, []string{m.Shard}); err != nil {
		return err
	}
	return w.Err()
}

// ReadShardMeta decodes the shard/meta section, reporting ok=false
// (with no error) when the snapshot has none.
func ReadShardMeta(f *File) (m ShardMeta, ok bool, err error) {
	if f.Section(ShardMetaSection) == nil {
		return ShardMeta{}, false, nil
	}
	d := NewSectionReader(f, ShardMetaSection)
	m.Generation = d.I64()
	m.CorpusHash = d.U64()
	names := d.Strings()
	if err := d.Err(); err != nil {
		return ShardMeta{}, false, err
	}
	if len(names) != 1 {
		d.Fail("shard name table must hold exactly one entry")
		return ShardMeta{}, false, d.Err()
	}
	// The decoded string is a view into the file; clone so the meta
	// outlives the mapping.
	m.Shard = strings.Clone(names[0])
	return m, true, nil
}
