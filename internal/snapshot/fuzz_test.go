package snapshot

import (
	"bytes"
	"testing"
)

// FuzzRead drives the whole verification path — header, trailer, table
// decode, section checksums — with arbitrary bytes. The invariant is
// simple: no input may panic, and any accepted input must index cleanly.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("seed")
	w.U64(2)
	w.I32s([]int32{1, 2})
	if err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte(Magic))
	f.Add(valid[:len(valid)-trailerSize])
	f.Add([]byte("000000000")) // 8 < len < headerSize, non-magic prefix
	// A file carrying the optional shard/meta section, so the fuzzer
	// explores the fleet-label decode path too.
	var mbuf bytes.Buffer
	mw := NewWriter(&mbuf)
	if err := WriteShardMeta(mw, ShardMeta{Shard: "s0", Generation: 3, CorpusHash: 17}); err != nil {
		f.Fatal(err)
	}
	if err := mw.Finish(); err != nil {
		f.Fatal(err)
	}
	f.Add(mbuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for name := range sf.secs {
			_ = sf.Section(name)
		}
		_, _, _ = ReadShardMeta(sf)
	})
}

// FuzzParseTable targets the section-table decoder directly with
// arbitrary table bytes against a fixed file size.
func FuzzParseTable(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, uint64(64))
	f.Fuzz(func(t *testing.T, table []byte, fileSize uint64) {
		secs, err := parseTable(table, fileSize)
		if err != nil {
			return
		}
		for _, s := range secs {
			if s.off < headerSize || s.off > fileSize || s.len > fileSize-s.off {
				t.Fatalf("accepted out-of-bounds section %+v for file size %d", s, fileSize)
			}
		}
	})
}
