package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"
)

// nativeLE reports whether the host is little-endian; when true, array
// sections are viewed in place with zero copies.
var nativeLE = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == binary.LittleEndian.Uint16([]byte{0x01, 0x02})

// File is an opened, fully verified snapshot. Section accessors return
// views into the backing data — when the file was mmapped, directly into
// the mapping — so the File must stay alive (and un-Closed) for as long
// as any structure built over those views is in use. Long-lived loaders
// (a restarted Monitor) simply keep the File for the life of the
// process.
type File struct {
	data   []byte
	secs   map[string][]byte
	mapped bool
	unmap  func() error
}

// Open opens and verifies a snapshot file. On platforms that support it
// the file is memory-mapped read-only — the terminal the hot arrays load
// through with zero copies — otherwise (and for unseekable inputs) it
// falls back to reading the file into memory, behaving identically.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if data, unmap, ok := mmap(f, st.Size()); ok {
		sf, err := verify(data, true, unmap)
		if err != nil {
			unmap()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return sf, nil
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	sf, err := verify(data, false, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sf, nil
}

// Read loads a snapshot from any io.Reader — the pure-portability path
// (a network stream, a test buffer). The whole input is read into
// memory and verified exactly like an opened file.
func Read(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return verify(data, false, nil)
}

// verify validates header, trailer, section table, and every section
// checksum, and indexes the sections. All failure modes are typed; see
// the package errors.
func verify(data []byte, mapped bool, unmap func() error) (*File, error) {
	if len(data) < headerSize {
		n := min(len(data), len(Magic))
		if n > 0 && string(data[:n]) == Magic[:n] {
			return nil, ErrTruncated
		}
		return nil, ErrFormat
	}
	if string(data[:8]) != Magic {
		return nil, ErrFormat
	}
	if v := le.Uint32(data[8:]); v > Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	if len(data) < headerSize+trailerSize {
		return nil, ErrTruncated
	}
	tr := data[len(data)-trailerSize:]
	if string(tr[24:32]) != Magic {
		// The leading magic matched, so this is our file with its end cut
		// off (or overwritten) — the signature of an interrupted write.
		return nil, ErrTruncated
	}
	if v := le.Uint32(tr[20:]); v > Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	tableOff, tableLen := le.Uint64(tr[0:]), le.Uint64(tr[8:])
	bodyEnd := uint64(len(data) - trailerSize)
	if tableOff < headerSize || tableOff > bodyEnd || tableLen > bodyEnd-tableOff {
		return nil, ErrTruncated
	}
	table := data[tableOff : tableOff+tableLen]
	if crc32.Checksum(table, castagnoli) != le.Uint32(tr[16:]) {
		return nil, fmt.Errorf("%w: section table", ErrChecksum)
	}
	secs, err := parseTable(table, tableOff)
	if err != nil {
		return nil, err
	}
	f := &File{data: data, secs: make(map[string][]byte, len(secs)), mapped: mapped, unmap: unmap}
	for _, s := range secs {
		if _, dup := f.secs[s.name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, s.name)
		}
		payload := data[s.off : s.off+s.len]
		if crc32.Checksum(payload, castagnoli) != s.crc {
			return nil, fmt.Errorf("%w: section %q", ErrChecksum, s.name)
		}
		f.secs[s.name] = payload
	}
	return f, nil
}

// Section returns the named section's payload, or nil when absent. The
// returned slice aliases the file's backing data; treat it as read-only.
func (f *File) Section(name string) []byte { return f.secs[name] }

// Size reports the snapshot's total size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Mapped reports whether the file is memory-mapped (the mmap terminal)
// rather than heap-resident (the io.Reader fallback).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping, when one exists. Every view previously
// returned by Section — and every structure aliasing one — becomes
// invalid. Loaders that hand out long-lived views keep the File open for
// the life of the process instead.
func (f *File) Close() error {
	f.secs = nil
	f.data = nil
	if f.unmap != nil {
		u := f.unmap
		f.unmap = nil
		return u()
	}
	return nil
}

// I32View reinterprets a byte slice as little-endian int32s. On
// little-endian hosts this is a zero-copy view (the mmap fast path); a
// big-endian host pays one conversion copy. len(b) must be a multiple
// of 4.
func I32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(le.Uint32(b[4*i:]))
	}
	return out
}

// I64View reinterprets a byte slice as little-endian int64s; zero-copy
// on little-endian hosts. len(b) must be a multiple of 8, and b must be
// 8-byte aligned (section starts and Pad8 boundaries are).
func I64View(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(le.Uint64(b[8*i:]))
	}
	return out
}
