package audit_test

import (
	"context"
	"strings"
	"testing"

	"dnstrust/internal/audit"
	"dnstrust/internal/crawler"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

// fbiSurvey builds a fingerprinted survey of the FBI world.
func fbiSurvey(t *testing.T) *crawler.Survey {
	t.Helper()
	reg := topology.FBIWorld()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(context.Background(), "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	s := crawler.FromSnapshot(w.Snapshot(map[string][]string{"www.fbi.gov": chain}, nil))
	probe := reg.ProbeFunc(nil)
	for _, h := range s.Graph.Hosts() {
		banner, err := probe(context.Background(), h)
		if err != nil {
			continue
		}
		s.Banner[h] = banner
		if v := s.DB.VulnsForBanner(banner); len(v) > 0 {
			s.Vulns[h] = v
		}
	}
	return s
}

func TestAuditFBIFindsVulnerableDependency(t *testing.T) {
	s := fbiSurvey(t)
	findings, err := audit.Name(s, "www.fbi.gov", audit.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	foundVuln := false
	for _, f := range findings {
		if f.Kind == audit.KindVulnerableDependency && f.Subject == "reston-ns2.telemail.net" {
			foundVuln = true
			if f.Severity != audit.Critical {
				t.Errorf("vulnerable dependency severity = %v", f.Severity)
			}
			if !strings.Contains(f.Detail, "8.2.4") {
				t.Errorf("detail missing version: %s", f.Detail)
			}
		}
	}
	if !foundVuln {
		t.Errorf("audit missed the paper's reston-ns2 dependency; findings: %v", findings)
	}
	if audit.Worst(findings) != audit.Critical {
		t.Error("worst severity should be critical")
	}
}

func TestAuditExternalTrust(t *testing.T) {
	s := fbiSurvey(t)
	findings, err := audit.Name(s, "www.fbi.gov", audit.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	// fbi.gov runs no nameservers of its own: the audit must say so.
	found := false
	for _, f := range findings {
		if f.Kind == audit.KindExternalTrust {
			found = true
		}
	}
	if !found {
		t.Errorf("audit missed fully external direct trust; findings: %v", findings)
	}
}

func TestAuditUkraineWorstCase(t *testing.T) {
	reg := topology.UkraineWorld()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(context.Background(), "www.rkc.lviv.ua")
	if err != nil {
		t.Fatal(err)
	}
	s := crawler.FromSnapshot(w.Snapshot(map[string][]string{"www.rkc.lviv.ua": chain}, nil))

	// Low threshold so the Ukraine TCB trips the policy.
	findings, err := audit.Name(s, "www.rkc.lviv.ua", audit.Policy{MaxTCB: 10})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[audit.Kind]bool{}
	for _, f := range findings {
		kinds[f.Kind] = true
	}
	if !kinds[audit.KindExcessiveTCB] {
		t.Error("audit missed the oversized TCB")
	}
	if !kinds[audit.KindCrossTLDDependency] {
		t.Error("audit missed the cross-TLD small world")
	}
	if !kinds[audit.KindSingleServerZone] {
		t.Error("audit missed the single-server telstra.net zone")
	}
}

func TestAuditFindingsSortedBySeverity(t *testing.T) {
	s := fbiSurvey(t)
	findings, err := audit.Name(s, "www.fbi.gov", audit.Policy{MaxTCB: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(findings); i++ {
		if findings[i].Severity > findings[i-1].Severity {
			t.Fatal("findings not sorted by severity")
		}
	}
}

func TestAuditUnknownName(t *testing.T) {
	s := fbiSurvey(t)
	if _, err := audit.Name(s, "unknown.example.com", audit.Policy{}); err == nil {
		t.Error("auditing an unsurveyed name must error")
	}
}

func TestSeverityAndKindStrings(t *testing.T) {
	if audit.Critical.String() != "CRITICAL" || audit.Info.String() != "info" || audit.Warning.String() != "warning" {
		t.Error("severity strings wrong")
	}
	for k := audit.KindExcessiveTCB; k <= audit.KindCrossTLDDependency; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	f := audit.Finding{Severity: audit.Critical, Kind: audit.KindVulnerableDependency,
		Subject: "x", Detail: "y"}
	if !strings.Contains(f.String(), "CRITICAL") || !strings.Contains(f.String(), "x") {
		t.Errorf("finding string: %s", f)
	}
}

func TestWorstEmpty(t *testing.T) {
	if audit.Worst(nil) != audit.Info {
		t.Error("empty findings should be Info")
	}
}
