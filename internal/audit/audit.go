// Package audit implements the "stopgap measure" the paper's §5 calls
// for: a diligence tool that tells a name owner where their transitive
// trust actually goes and which dependencies are dangerous. It inspects
// a survey dataset and reports findings — oversized TCBs, exploitable
// dependencies, narrow bottlenecks, glue-less cycles, single-server
// zones, and trust extended across administrative boundaries.
package audit

import (
	"fmt"
	"sort"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings describe trust posture without implying a defect.
	Info Severity = iota
	// Warning findings deserve administrator attention.
	Warning
	// Critical findings enable hijacks with published exploits.
	Critical
)

func (s Severity) String() string {
	switch s {
	case Critical:
		return "CRITICAL"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Kind classifies a finding.
type Kind int

const (
	// KindExcessiveTCB: the name depends on more servers than the policy
	// threshold.
	KindExcessiveTCB Kind = iota
	// KindVulnerableDependency: a TCB member has known exploits.
	KindVulnerableDependency
	// KindVulnerableBottleneck: the complete-hijack min-cut consists
	// entirely (or nearly) of exploitable servers.
	KindVulnerableBottleneck
	// KindNarrowBottleneck: very few servers fully control the name.
	KindNarrowBottleneck
	// KindExternalTrust: the name's own NS set lives entirely outside
	// the owner's administrative domain.
	KindExternalTrust
	// KindSingleServerZone: a zone on the chain has one nameserver.
	KindSingleServerZone
	// KindUnresolvableNS: a nameserver host on the chain failed to
	// resolve during the crawl (lame or glue-less cycle).
	KindUnresolvableNS
	// KindCrossTLDDependency: the delegation chain crosses into zones
	// under other top-level domains (the small-world effect).
	KindCrossTLDDependency
)

func (k Kind) String() string {
	switch k {
	case KindExcessiveTCB:
		return "excessive-tcb"
	case KindVulnerableDependency:
		return "vulnerable-dependency"
	case KindVulnerableBottleneck:
		return "vulnerable-bottleneck"
	case KindNarrowBottleneck:
		return "narrow-bottleneck"
	case KindExternalTrust:
		return "external-trust"
	case KindSingleServerZone:
		return "single-server-zone"
	case KindUnresolvableNS:
		return "unresolvable-nameserver"
	default:
		return "cross-tld-dependency"
	}
}

// Finding is one audit observation.
type Finding struct {
	Severity Severity
	Kind     Kind
	// Subject is the zone, server or name the finding concerns.
	Subject string
	// Detail is a human-readable explanation.
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s %s: %s", f.Severity, f.Kind, f.Subject, f.Detail)
}

// Policy sets the audit thresholds. The zero value takes defaults
// informed by the paper's measurements.
type Policy struct {
	// MaxTCB flags names whose TCB exceeds this size (default 100: the
	// paper's 90th-ish percentile).
	MaxTCB int
	// MinBottleneck flags names completely controllable by fewer than
	// this many servers (default 2).
	MinBottleneck int
}

func (p *Policy) applyDefaults() {
	if p.MaxTCB == 0 {
		p.MaxTCB = 100
	}
	if p.MinBottleneck == 0 {
		p.MinBottleneck = 2
	}
}

// Name audits one surveyed name's trust posture.
func Name(s *crawler.Survey, name string, policy Policy) ([]Finding, error) {
	policy.applyDefaults()
	name = dnsname.Canonical(name)
	g := s.Graph
	tcb, err := g.TCB(name)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	add := func(sev Severity, kind Kind, subject, format string, args ...any) {
		findings = append(findings, Finding{
			Severity: sev, Kind: kind, Subject: subject,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// TCB size.
	if len(tcb) > policy.MaxTCB {
		add(Warning, KindExcessiveTCB, name,
			"trusted computing base has %d nameservers (policy: %d); every one can affect resolution",
			len(tcb), policy.MaxTCB)
	}

	// Vulnerable dependencies.
	var vulnerable []string
	for _, h := range tcb {
		if s.Vulnerable(h) {
			vulnerable = append(vulnerable, h)
		}
	}
	for _, h := range vulnerable {
		var names []string
		for _, v := range s.Vulns[h] {
			names = append(names, v.Name)
		}
		add(Critical, KindVulnerableDependency, h,
			"dependency runs %s with published exploits %v", s.Banner[h], names)
	}

	// Bottleneck analysis.
	res, err := analysis.BottleneckOf(s, name)
	if err == nil {
		if res.Size < policy.MinBottleneck {
			add(Warning, KindNarrowBottleneck, name,
				"complete hijack requires only %d server(s): %v", res.Size, res.Cut)
		}
		switch {
		case res.SafeInCut == 0 && res.VulnInCut > 0:
			add(Critical, KindVulnerableBottleneck, name,
				"a complete hijack needs only the %d exploitable server(s) %v — scripted attacks suffice",
				res.VulnInCut, res.Cut)
		case res.SafeInCut == 1 && res.VulnInCut > 0:
			add(Warning, KindVulnerableBottleneck, name,
				"one denial-of-service plus %d exploit(s) completely hijack this name", res.VulnInCut)
		}
	}

	// External trust: the owner's own NS set.
	direct, err := g.DirectNS(name)
	if err == nil {
		rd, rdErr := dnsname.RegisteredDomain(name)
		external := 0
		for _, h := range direct {
			hrd, err := dnsname.RegisteredDomain(h)
			if rdErr != nil || err != nil || hrd != rd {
				external++
			}
		}
		if external == len(direct) && len(direct) > 0 {
			add(Info, KindExternalTrust, name,
				"all %d directly trusted nameservers are operated by third parties", len(direct))
		}
	}

	// Per-zone structure on the reachable graph.
	zoneIDs, err := g.ReachableZoneIDs(name)
	if err == nil {
		tlds := map[string]bool{}
		for _, z := range zoneIDs {
			apex := g.Zones()[z]
			if len(g.ZoneNS(apex)) == 1 {
				add(Warning, KindSingleServerZone, apex,
					"zone on the delegation graph has a single nameserver (no failure or attack tolerance)")
			}
			tlds[dnsname.TLD(apex)] = true
		}
		if len(tlds) > 2 {
			var list []string
			for t := range tlds {
				list = append(list, t)
			}
			sort.Strings(list)
			add(Info, KindCrossTLDDependency, name,
				"delegation graph spans %d top-level domains %v", len(tlds), list)
		}
	}

	// Unresolvable nameservers recorded by the crawl.
	for host, cerr := range s.Failed {
		for _, h := range tcb {
			if h == host {
				add(Warning, KindUnresolvableNS, host,
					"nameserver failed to resolve during the crawl: %v", cerr)
			}
		}
	}

	sort.SliceStable(findings, func(i, j int) bool {
		return findings[i].Severity > findings[j].Severity
	})
	return findings, nil
}

// Worst returns the highest severity among findings (Info when empty).
func Worst(findings []Finding) Severity {
	worst := Info
	for _, f := range findings {
		if f.Severity > worst {
			worst = f.Severity
		}
	}
	return worst
}
