package analysis

import (
	"context"
	"runtime"
	"strings"
	"sync"

	"dnstrust/internal/crawler"
	"dnstrust/internal/mincut"
)

// BottleneckStats aggregates the Figure 7 analysis over a name set.
type BottleneckStats struct {
	// SafeCounts holds, per name, the number of non-vulnerable servers in
	// the min-cut that minimizes that number (Figure 7's x axis).
	SafeCounts []int
	// CutSizes holds, per name, the size of the minimum (unweighted)
	// vertex cut (the paper's "average min-cut is 2.5 nameservers").
	CutSizes []int
	// FullyVulnerable counts names whose bottleneck consists entirely of
	// exploitable servers (the paper's 30%).
	FullyVulnerable int
	// OneSafe counts names with exactly one safe bottleneck server (the
	// "DoS the one safe server" population, the paper's extra 10%).
	OneSafe int
	// Names is the number of names analyzed.
	Names int
}

// Bottlenecks runs the min-cut analysis of §3.2 over the given names.
// Names sharing a delegation chain share a digraph, so results are
// deduplicated per interned chain id — no string keys are built on this
// path. The work is spread over workers goroutines (0 = GOMAXPROCS).
func Bottlenecks(ctx context.Context, s *crawler.Survey, names []string, workers int) (*BottleneckStats, error) {
	return BottlenecksMemo(ctx, s, names, workers, nil)
}

// BottlenecksMemo is Bottlenecks backed by a persistent chain memo:
// chains whose min-cut is already cached (from an earlier pass, or an
// earlier generation that did not touch them) are aggregated without
// running max-flow, and freshly computed chains are stored for the next
// pass. With a warm memo the whole analysis degenerates to one map
// lookup per distinct chain. memo may be nil (pure dedup within the
// call, the previous behavior).
func BottlenecksMemo(ctx context.Context, s *crawler.Survey, names []string, workers int, memo *ChainMemo) (*BottleneckStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vuln := func(host string) bool { return s.Vulnerable(host) }
	gen := s.Stats.Generation

	// Group names by interned chain id: identical chains give identical
	// digraphs and cuts.
	type group struct {
		cid   int32
		rep   string // representative name
		count int
	}
	groups := map[int32]*group{}
	for _, n := range names {
		cid, ok := s.Graph.NameChainID(n)
		if !ok {
			continue
		}
		if g, ok := groups[cid]; ok {
			g.count++
		} else {
			groups[cid] = &group{cid: cid, rep: n, count: 1}
		}
	}

	stats := &BottleneckStats{}
	tally := func(res *mincut.Result, count int) {
		for k := 0; k < count; k++ {
			stats.Names++
			stats.SafeCounts = append(stats.SafeCounts, res.SafeInCut)
			stats.CutSizes = append(stats.CutSizes, res.Size)
			if res.SafeInCut == 0 {
				stats.FullyVulnerable++
			}
			if res.SafeInCut == 1 {
				stats.OneSafe++
			}
		}
	}

	// Serve memo hits directly; only misses go to the worker pool.
	var misses []*group
	for _, g := range groups {
		if res, ok := memo.cut(g.cid, gen); ok {
			tally(res, g.count)
		} else {
			misses = append(misses, g)
		}
	}
	if len(misses) == 0 {
		return stats, ctx.Err()
	}

	type outcome struct {
		cid   int32
		res   *mincut.Result
		count int
		err   error
	}
	in := make(chan *group)
	out := make(chan outcome)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range in {
				d, err := s.Graph.Digraph(g.rep)
				if err != nil {
					out <- outcome{err: err, count: g.count}
					continue
				}
				res, err := mincut.Analyze(d, vuln)
				out <- outcome{cid: g.cid, res: res, err: err, count: g.count}
			}
		}()
	}
	go func() {
		defer close(in)
		for _, g := range misses {
			select {
			case in <- g:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	var firstErr error
	for oc := range out {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = oc.err
			}
			continue
		}
		memo.storeCut(oc.cid, gen, oc.res)
		tally(oc.res, oc.count)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil && stats.Names == 0 {
		return nil, firstErr
	}
	return stats, nil
}

// BottleneckOf runs the §3.2 min-cut analysis for a single name.
func BottleneckOf(s *crawler.Survey, name string) (*mincut.Result, error) {
	d, err := s.Graph.Digraph(name)
	if err != nil {
		return nil, err
	}
	return mincut.Analyze(d, func(host string) bool { return s.Vulnerable(host) })
}

// ANDORHijackBound computes, via the AND/OR tree-cost fixpoint, an upper
// bound on the number of server compromises needed for a complete hijack
// of each name (exact on tree-shaped dependencies; see mincut.SolveANDOR).
// One global fixpoint prices every zone, making this the cheap
// counterpart of the per-name digraph min-cut (ablation). The input is
// assembled straight from the graph's interned id arrays — no string
// round-trips.
func ANDORHijackBound(s *crawler.Survey, names []string) []int64 {
	g := s.Graph
	nh, nz := g.NumHosts(), g.NumZones()

	in := mincut.ANDORInput{
		HostWeight: make([]int64, nh),
		ZoneNS:     make([][]int32, nz),
		HostChain:  make([][]int32, nh),
		Grounded:   make([]bool, nh),
	}
	for i := range in.HostWeight {
		in.HostWeight[i] = 1
	}
	for z := int32(0); z < int32(nz); z++ {
		in.ZoneNS[z] = g.ZoneNSIDs(z)
		// TLD servers are grounded by root glue.
		if isTLD(g.Zone(z)) {
			for _, h := range g.ZoneNSIDs(z) {
				in.Grounded[h] = true
			}
		}
	}
	for hid := int32(0); hid < int32(nh); hid++ {
		chain := g.HostChainIDs(hid)
		// Glue waiver: an in-bailiwick server of its own zone is reached
		// through parent referral glue; its own zone is not an address
		// dependency. The shared chain slice is re-sliced, never mutated.
		if len(chain) > 0 {
			az := chain[len(chain)-1]
			for _, ns := range g.ZoneNSIDs(az) {
				if ns == hid {
					chain = chain[:len(chain)-1]
					break
				}
			}
		}
		in.HostChain[hid] = chain
	}
	res := mincut.SolveANDOR(in)

	out := make([]int64, 0, len(names))
	for _, n := range names {
		cid, ok := g.NameChainID(n)
		if !ok {
			continue
		}
		chain := g.ChainZoneIDs(cid)
		if len(chain) == 0 {
			continue
		}
		out = append(out, res.KillName(chain))
	}
	return out
}

func isTLD(apex string) bool {
	return apex != "" && strings.IndexByte(apex, '.') < 0
}
