package analysis

import (
	"math"
	"sort"

	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
)

// ControlEntry is one ranked server of Figure 8/9: how many surveyed
// names the server participates in resolving ("controls").
type ControlEntry struct {
	Host       string
	Names      int
	Vulnerable bool
}

// ControlStats ranks every nameserver by the number of names it controls.
type ControlStats struct {
	// Ranked is sorted by decreasing control (ties by host name).
	Ranked []ControlEntry
	// TotalNames is the number of surveyed names counted.
	TotalNames int
}

// Control computes names-controlled per server over the given names —
// the raw data of Figure 8. A server "controls" a name when it appears
// in the name's TCB. Names are first bucketed by interned chain id, so
// each chain's (shared) TCB slice is walked once, weighted by how many
// of the given names ride it.
func Control(s *crawler.Survey, names []string) *ControlStats {
	perChain := make([]int, s.Graph.NumChains())
	total := 0
	for _, n := range names {
		cid, ok := s.Graph.NameChainID(n)
		if !ok {
			continue
		}
		total++
		perChain[cid]++
	}
	counts := make([]int, s.Graph.NumHosts())
	for cid, weight := range perChain {
		if weight == 0 {
			continue
		}
		for _, id := range s.Graph.ChainTCBIDs(int32(cid)) {
			counts[id] += weight
		}
	}
	hosts := s.Graph.Hosts()
	ranked := make([]ControlEntry, 0, len(hosts))
	for id, host := range hosts {
		ranked = append(ranked, ControlEntry{
			Host:       host,
			Names:      counts[id],
			Vulnerable: s.Vulnerable(host),
		})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Names != ranked[j].Names {
			return ranked[i].Names > ranked[j].Names
		}
		return ranked[i].Host < ranked[j].Host
	})
	return &ControlStats{Ranked: ranked, TotalNames: total}
}

// MeanControl returns the average number of names controlled per server
// (the paper's "an average nameserver is involved in the resolution of
// 166 externally visible names").
func (c *ControlStats) MeanControl() float64 {
	if len(c.Ranked) == 0 {
		return 0
	}
	var sum float64
	for _, e := range c.Ranked {
		sum += float64(e.Names)
	}
	return sum / float64(len(c.Ranked))
}

// MedianControl returns the median names-controlled (the paper's 4).
func (c *ControlStats) MedianControl() int {
	if len(c.Ranked) == 0 {
		return 0
	}
	xs := make([]int, len(c.Ranked))
	for i, e := range c.Ranked {
		xs[i] = e.Names
	}
	sort.Ints(xs)
	return xs[len(xs)/2]
}

// ControllingAtLeast returns the servers controlling more than the given
// fraction of all surveyed names (the paper's "about 125 nameservers each
// control more than 10% of the surveyed names").
func (c *ControlStats) ControllingAtLeast(frac float64) []ControlEntry {
	threshold := int(frac * float64(c.TotalNames))
	var out []ControlEntry
	for _, e := range c.Ranked {
		if e.Names > threshold {
			out = append(out, e)
		} else {
			break // ranked descending
		}
	}
	return out
}

// FilterHostTLD keeps the entries whose host lives under the given TLD —
// Figure 9's .edu and .org serieses.
func (c *ControlStats) FilterHostTLD(tld string) []ControlEntry {
	var out []ControlEntry
	for _, e := range c.Ranked {
		if dnsname.TLD(e.Host) == tld {
			out = append(out, e)
		}
	}
	return out
}

// FilterVulnerable keeps the entries with known exploits — Figure 8's
// second series.
func (c *ControlStats) FilterVulnerable() []ControlEntry {
	var out []ControlEntry
	for _, e := range c.Ranked {
		if e.Vulnerable {
			out = append(out, e)
		}
	}
	return out
}

// RankPoint is one (rank, names-controlled) sample of a log-log rank
// curve, 1-indexed.
type RankPoint struct {
	Rank  int
	Names int
}

// RankCurve renders entries as Figure 8/9 points, subsampled
// logarithmically to at most maxPoints.
func RankCurve(entries []ControlEntry, maxPoints int) []RankPoint {
	n := len(entries)
	if n == 0 {
		return nil
	}
	var pts []RankPoint
	emit := func(i int) {
		pts = append(pts, RankPoint{Rank: i + 1, Names: entries[i].Names})
	}
	if maxPoints <= 0 || n <= maxPoints {
		for i := range entries {
			emit(i)
		}
		return pts
	}
	// Log-spaced ranks: the curves are read on log-log axes.
	last := -1
	for k := 0; k < maxPoints; k++ {
		x := float64(k) / float64(maxPoints-1)
		i := int(float64(n-1) * math.Pow(float64(n), x-1)) // log-spaced ranks
		if i <= last {
			i = last + 1
		}
		if i >= n {
			break
		}
		emit(i)
		last = i
	}
	return pts
}
