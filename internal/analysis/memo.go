// Chain-keyed analysis memoization. Names sharing a delegation chain
// share a TCB and a min-cut digraph, and a monitored survey's chains are
// interned with stable ids across generations — so analysis results can
// be cached per chain id and survive incremental Adds, invalidated only
// for the chains an Add actually touched.
package analysis

import (
	"sync"

	"dnstrust/internal/crawler"
	"dnstrust/internal/mincut"
)

// ChainMemo caches per-chain analysis results — min-cut bottlenecks and
// TCB size/vulnerability counts — keyed by interned chain id, across the
// generations of a monitored survey. It is safe for concurrent use:
// readers of several generations may look up and store results while a
// Monitor advances the memo past new generations.
//
// Correctness across generations rests on the builder's invariants: a
// chain id means the same delegation chain forever, zone NS sets are
// first-observation-wins immutable, and the only way an existing chain's
// TCB or digraph can change between generations is a host whose address
// chain attached late (crawler.CrawlStats.LateAttachedHosts). Advance
// marks exactly the chains whose TCB intersects that set as touched;
// every entry records the generation it was computed at, and a lookup
// from a generation-g view hits only when the chain was last touched at
// or before both g and the entry's generation.
type ChainMemo struct {
	mu sync.RWMutex
	// lastTouch[cid] is the generation at which the chain's dependency
	// structure last changed; absent means never since monitoring began.
	lastTouch map[int32]int64
	cuts      map[int32]memoCut
	counts    map[int32]memoCount
}

type memoCut struct {
	gen int64
	res *mincut.Result
}

type memoCount struct {
	gen        int64
	size, vuln int
}

// NewChainMemo returns an empty memo.
func NewChainMemo() *ChainMemo {
	return &ChainMemo{
		lastTouch: make(map[int32]int64),
		cuts:      make(map[int32]memoCut),
		counts:    make(map[int32]memoCount),
	}
}

// Advance moves the memo from one committed generation to the next:
// chains whose TCB (in the previous generation) contains a late-attached
// host are marked touched at the new generation and their entries
// dropped; every other entry stays valid. With no late attachments — the
// overwhelmingly common batch — Advance is O(1).
func (m *ChainMemo) Advance(prev, next *crawler.Survey) {
	if m == nil || prev == nil || next == nil {
		return
	}
	late := next.Stats.LateAttachedHosts
	if len(late) == 0 {
		return
	}
	lateSet := make(map[int32]bool, len(late))
	for _, h := range late {
		lateSet[h] = true
	}
	gen := next.Stats.Generation
	g := prev.Graph
	m.mu.Lock()
	defer m.mu.Unlock()
	for cid := int32(0); cid < int32(g.NumChains()); cid++ {
		for _, h := range g.ChainTCBIDs(cid) {
			if lateSet[h] {
				m.lastTouch[cid] = gen
				delete(m.cuts, cid)
				delete(m.counts, cid)
				break
			}
		}
	}
}

// validFor reports whether an entry computed at entryGen serves a view
// of generation viewGen: the chain must not have been touched after
// either. lastTouch is read under the lock by callers.
func (m *ChainMemo) validFor(cid int32, entryGen, viewGen int64) bool {
	t := m.lastTouch[cid]
	return t <= entryGen && t <= viewGen
}

// cut returns the memoized min-cut of a chain for a view generation.
func (m *ChainMemo) cut(cid int32, viewGen int64) (*mincut.Result, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.cuts[cid]
	if !ok || !m.validFor(cid, e.gen, viewGen) {
		return nil, false
	}
	return e.res, true
}

// storeCut records a chain's min-cut computed against a view of the
// given generation, preferring the newest computation when views of
// different generations race.
func (m *ChainMemo) storeCut(cid int32, viewGen int64, res *mincut.Result) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.cuts[cid]; ok && e.gen > viewGen {
		return
	}
	m.cuts[cid] = memoCut{gen: viewGen, res: res}
}

// count returns the memoized (TCB size, vulnerable members) of a chain
// for a view generation.
func (m *ChainMemo) count(cid int32, viewGen int64) (size, vuln int, ok bool) {
	if m == nil {
		return 0, 0, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.counts[cid]
	if !ok || !m.validFor(cid, e.gen, viewGen) {
		return 0, 0, false
	}
	return e.size, e.vuln, true
}

// storeCount records a chain's TCB counts computed against a view of the
// given generation.
func (m *ChainMemo) storeCount(cid int32, viewGen int64, size, vuln int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.counts[cid]; ok && e.gen > viewGen {
		return
	}
	m.counts[cid] = memoCount{gen: viewGen, size: size, vuln: vuln}
}

// BottleneckOfMemo runs the §3.2 min-cut analysis for one name through
// the memo: the first query of a chain pays the max-flow, every later
// query of any name on that chain — in this generation or any untouched
// one — is a lookup. The returned result is caller-owned.
func BottleneckOfMemo(s *crawler.Survey, name string, memo *ChainMemo) (*mincut.Result, error) {
	cid, ok := s.Graph.NameChainID(name)
	if !ok {
		return BottleneckOf(s, name) // surfaces the not-in-survey error
	}
	gen := s.Stats.Generation
	if res, ok := memo.cut(cid, gen); ok {
		return res.Clone(), nil
	}
	res, err := BottleneckOf(s, name)
	if err != nil {
		return nil, err
	}
	memo.storeCut(cid, gen, res)
	return res.Clone(), nil
}
