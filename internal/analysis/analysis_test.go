package analysis_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
	"dnstrust/internal/topology"
)

// sharedSurvey crawls one moderately sized world once for all tests.
var (
	surveyOnce sync.Once
	gWorld     *topology.World
	gSurvey    *crawler.Survey
	surveyErr  error
)

func survey(t *testing.T) (*topology.World, *crawler.Survey) {
	t.Helper()
	surveyOnce.Do(func() {
		w, err := topology.Generate(topology.GenParams{Seed: 5, Names: 3000})
		if err != nil {
			surveyErr = err
			return
		}
		tr := w.Registry.Source()
		r, err := w.Registry.Resolver(tr)
		if err != nil {
			surveyErr = err
			return
		}
		s, err := crawler.Run(context.Background(), r, w.Corpus,
			w.Registry.ProbeFunc(tr), crawler.Config{})
		if err != nil {
			surveyErr = err
			return
		}
		gWorld, gSurvey = w, s
	})
	if surveyErr != nil {
		t.Fatal(surveyErr)
	}
	return gWorld, gSurvey
}

func TestCDFBasics(t *testing.T) {
	c := analysis.NewCDF([]int{5, 1, 3, 3, 9})
	if c.N() != 5 || c.Median() != 3 || c.Max() != 9 {
		t.Errorf("n=%d median=%d max=%d", c.N(), c.Median(), c.Max())
	}
	if got := c.Mean(); math.Abs(got-4.2) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if got := c.FracAbove(3); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("FracAbove(3) = %v", got)
	}
	if got := c.FracAtMost(3); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("FracAtMost(3) = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Q0 = %d", got)
	}
	if got := c.Quantile(1); got != 9 {
		t.Errorf("Q1 = %d", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := analysis.NewCDF(nil)
	if c.N() != 0 || c.Mean() != 0 || c.Median() != 0 || c.Max() != 0 {
		t.Error("empty CDF must be all zeros")
	}
	if c.Curve(10) != nil {
		t.Error("empty curve must be nil")
	}
}

func TestCDFCurveMonotone(t *testing.T) {
	_, s := survey(t)
	sizes := analysis.TCBSizes(s, s.Names)
	curve := analysis.NewCDF(sizes).Curve(100)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].X <= curve[i-1].X || curve[i].Pct < curve[i-1].Pct {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
	if last := curve[len(curve)-1]; math.Abs(last.Pct-100) > 1e-9 {
		t.Errorf("curve must end at 100%%, got %v", last.Pct)
	}
}

func TestTLDAveragesOrdering(t *testing.T) {
	_, s := survey(t)
	avgs := analysis.TLDAverages(s, s.Names)
	if len(avgs) < 20 {
		t.Fatalf("only %d TLDs in survey", len(avgs))
	}
	for i := 1; i < len(avgs); i++ {
		if avgs[i-1].MeanTCB < avgs[i].MeanTCB {
			t.Fatal("averages not sorted descending")
		}
	}
	// The paper's macro statement: ccTLDs average far above gTLDs.
	cc := analysis.MacroAverage(analysis.FilterKind(avgs, dnsname.KindCountry))
	gen := analysis.MacroAverage(analysis.FilterKind(avgs, dnsname.KindGeneric))
	if cc <= gen {
		t.Errorf("ccTLD macro average %.1f should exceed gTLD %.1f", cc, gen)
	}
}

func TestFigure4WorstCCTLDs(t *testing.T) {
	_, s := survey(t)
	avgs := analysis.FilterKind(analysis.TLDAverages(s, s.Names), dnsname.KindCountry)
	rank := map[string]int{}
	for i, a := range avgs {
		rank[a.TLD] = i
	}
	// ua must rank worst among ccTLDs; the pathological set must beat the
	// well-run set.
	if rank["ua"] > 3 {
		t.Errorf("ua ranks %d, want among the very worst", rank["ua"])
	}
	for _, bad := range []string{"ua", "by", "pl", "it"} {
		for _, good := range []string{"de", "uk", "jp"} {
			if rank[bad] > rank[good] {
				t.Errorf("%s (rank %d) should be worse than %s (rank %d)",
					bad, rank[bad], good, rank[good])
			}
		}
	}
}

func TestFigure3GTLDs(t *testing.T) {
	_, s := survey(t)
	avgs := analysis.FilterKind(analysis.TLDAverages(s, s.Names), dnsname.KindGeneric)
	rank := map[string]float64{}
	for _, a := range avgs {
		rank[a.TLD] = a.MeanTCB
	}
	// aero and int must dominate; com must be among the smallest.
	if rank["aero"] < rank["com"]*2 {
		t.Errorf("aero avg %.0f should dwarf com %.0f", rank["aero"], rank["com"])
	}
	if rank["int"] < rank["com"]*2 {
		t.Errorf("int avg %.0f should dwarf com %.0f", rank["int"], rank["com"])
	}
}

func TestVulnInTCBAndSafety(t *testing.T) {
	_, s := survey(t)
	vulns := analysis.VulnInTCB(s, s.Names)
	safety := analysis.TCBSafety(s, s.Names)
	if len(vulns) != len(safety) {
		t.Fatalf("length mismatch %d vs %d", len(vulns), len(safety))
	}
	sizes := analysis.TCBSizes(s, s.Names)
	for i := range vulns {
		if vulns[i] < 0 || vulns[i] > sizes[i] {
			t.Fatalf("vuln count %d outside [0,%d]", vulns[i], sizes[i])
		}
		wantSafety := 100 * float64(sizes[i]-vulns[i]) / float64(sizes[i])
		if math.Abs(safety[i]-wantSafety) > 1e-9 {
			t.Fatalf("safety mismatch at %d: %v vs %v", i, safety[i], wantSafety)
		}
	}
	// The ws names must have fully vulnerable TCBs (0% safety).
	zeroSafety := 0
	for _, v := range safety {
		if v == 0 {
			zeroSafety++
		}
	}
	if zeroSafety == 0 {
		t.Error("no name with fully vulnerable TCB; the ws pathology is missing")
	}
}

func TestAffectedNamesPoisoning(t *testing.T) {
	_, s := survey(t)
	affected := analysis.AffectedNames(s, s.Names)
	fracServers := float64(s.VulnerableHosts()) / float64(s.Graph.NumHosts())
	fracNames := float64(affected) / float64(len(s.Names))
	// The paper's poisoning effect: the fraction of affected names far
	// exceeds the fraction of vulnerable servers.
	if fracNames < fracServers {
		t.Errorf("affected names %.2f should exceed vulnerable servers %.2f (transitive poisoning)",
			fracNames, fracServers)
	}
	if fracNames < 0.2 || fracNames > 0.9 {
		t.Errorf("affected fraction %.2f outside plausible band", fracNames)
	}
}

func TestControlStats(t *testing.T) {
	_, s := survey(t)
	ctrl := analysis.Control(s, s.Names)
	if ctrl.TotalNames != len(s.Names) {
		t.Errorf("total = %d, want %d", ctrl.TotalNames, len(s.Names))
	}
	// gTLD servers control essentially every com/net name: the top entry
	// must control a majority of names.
	if top := ctrl.Ranked[0]; top.Names < ctrl.TotalNames/2 {
		t.Errorf("top server %s controls %d of %d names; expected gTLD dominance",
			top.Host, top.Names, ctrl.TotalNames)
	}
	if ctrl.MeanControl() <= float64(ctrl.MedianControl()) {
		t.Error("control distribution should be heavy-tailed (mean >> median)")
	}
	big := ctrl.ControllingAtLeast(0.10)
	if len(big) < 19 {
		t.Errorf("only %d servers control >10%% of names; expect at least the gTLD+registry core", len(big))
	}
	// Consistency: every returned entry really is above threshold.
	for _, e := range big {
		if e.Names <= ctrl.TotalNames/10 {
			t.Fatalf("entry %s (%d) below threshold", e.Host, e.Names)
		}
	}
}

func TestControlFilters(t *testing.T) {
	_, s := survey(t)
	ctrl := analysis.Control(s, s.Names)
	edu := ctrl.FilterHostTLD("edu")
	if len(edu) == 0 {
		t.Fatal("no edu servers found")
	}
	for _, e := range edu {
		if dnsname.TLD(e.Host) != "edu" {
			t.Fatalf("non-edu host %s in edu filter", e.Host)
		}
	}
	vuln := ctrl.FilterVulnerable()
	if len(vuln) == 0 {
		t.Fatal("no vulnerable servers in control ranking")
	}
	for _, e := range vuln {
		if !e.Vulnerable {
			t.Fatal("non-vulnerable entry in vulnerable filter")
		}
	}
}

func TestRankCurve(t *testing.T) {
	_, s := survey(t)
	ctrl := analysis.Control(s, s.Names)
	pts := analysis.RankCurve(ctrl.Ranked, 50)
	if len(pts) == 0 || len(pts) > 50 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Rank <= pts[i-1].Rank {
			t.Fatal("ranks must increase")
		}
		if pts[i].Names > pts[i-1].Names {
			t.Fatal("names-controlled must not increase with rank")
		}
	}
}

func TestBottlenecks(t *testing.T) {
	_, s := survey(t)
	names := s.Names
	if len(names) > 600 {
		names = names[:600]
	}
	stats, err := analysis.Bottlenecks(context.Background(), s, names, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Names != len(names) {
		t.Errorf("analyzed %d of %d", stats.Names, len(names))
	}
	cuts := analysis.NewCDF(stats.CutSizes)
	// The paper: average min-cut 2.5 servers. Typical NS sets are 2-4.
	if cuts.Mean() < 1 || cuts.Mean() > 6 {
		t.Errorf("mean min-cut %.2f outside plausible band", cuts.Mean())
	}
	// Some names must be fully hijackable via vulnerable bottlenecks.
	if stats.FullyVulnerable == 0 {
		t.Error("no fully vulnerable bottlenecks found")
	}
	if stats.FullyVulnerable+stats.OneSafe > stats.Names {
		t.Error("bucket counts exceed names")
	}
}

func TestANDORBoundedByCut(t *testing.T) {
	_, s := survey(t)
	names := s.Names[:200]
	exact := analysis.ANDORHijackBound(s, names)
	if len(exact) != len(names) {
		t.Fatalf("exact results %d for %d names", len(exact), len(names))
	}
	for i, n := range names {
		if exact[i] < 1 {
			t.Fatalf("exact kill %d for %s", exact[i], n)
		}
		res, err := analysis.BottleneckOf(s, n)
		if err != nil {
			t.Fatal(err)
		}
		// The AND/OR optimum can never exceed the digraph cut (the cut is
		// a valid attack, the optimum is minimal).
		if exact[i] > int64(res.Size) {
			t.Fatalf("exact %d > min-cut %d for %s", exact[i], res.Size, n)
		}
	}
}

func TestSummarize(t *testing.T) {
	w, s := survey(t)
	sum := analysis.Summarize(s, s.Names)
	if sum.Names != len(s.Names) || sum.Servers != s.Graph.NumHosts() {
		t.Error("summary counts wrong")
	}
	if sum.TCB.Mean() <= 0 || sum.TCB.Median() <= 0 {
		t.Error("empty TCB stats")
	}
	if sum.OwnedMean < 0 || sum.OwnedMean > 5 {
		t.Errorf("owned mean %.2f outside plausible band (paper: 2.2)", sum.OwnedMean)
	}
	if sum.AffectedNames <= 0 || sum.AffectedNames > sum.Names {
		t.Errorf("affected = %d", sum.AffectedNames)
	}
	// Popular subset must have a larger mean TCB than the full corpus.
	popSum := analysis.Summarize(s, w.Popular)
	if popSum.TCB.Mean() <= sum.TCB.Mean() {
		t.Errorf("popular mean %.1f should exceed overall %.1f",
			popSum.TCB.Mean(), sum.TCB.Mean())
	}
}

func TestSafetyDistribution(t *testing.T) {
	_, s := survey(t)
	safety := analysis.TCBSafety(s, s.Names)
	pts := analysis.SafetyDistribution(safety, 100)
	if len(pts) == 0 {
		t.Fatal("empty distribution")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Safety < pts[i-1].Safety {
			t.Fatal("safety must be non-decreasing over rank")
		}
		if pts[i].RankPct <= pts[i-1].RankPct {
			t.Fatal("rank must increase")
		}
	}
}
