package analysis

import (
	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
)

// Summary carries the paper's headline in-text numbers.
type Summary struct {
	// Names surveyed successfully.
	Names int
	// Servers discovered (the paper's 166771).
	Servers int
	// VulnerableServers have known exploits (the paper's 27141, 17%).
	VulnerableServers int
	// AffectedNames have >= 1 vulnerable TCB member (the paper's 264599, 45%).
	AffectedNames int
	// TCB is the distribution of TCB sizes (mean 46, median 26).
	TCB *CDF
	// VulnPerTCB is the distribution of vulnerable-server counts per TCB
	// (mean 4.1).
	VulnPerTCB *CDF
	// DirectMean is the mean number of directly trusted servers (the NS
	// set of the name's own zone) — the paper's 2.2; the rest of the TCB
	// is transitive trust.
	DirectMean float64
	// OwnedMean is the mean number of TCB servers inside the name's own
	// registered domain (in-bailiwick operation).
	OwnedMean float64
}

// Summarize computes the headline statistics over the given names.
func Summarize(s *crawler.Survey, names []string) *Summary {
	return SummarizeMemo(s, names, nil)
}

// SummarizeMemo is Summarize through a persistent chain memo: the
// per-chain vulnerability scan is served from (and feeds) the memo, so
// repeated summaries of a monitored survey touch each distinct chain's
// TCB once across all generations that leave it untouched. memo may be
// nil.
func SummarizeMemo(s *crawler.Survey, names []string, memo *ChainMemo) *Summary {
	sizes := TCBSizes(s, names)
	vulns := VulnInTCBMemo(s, names, memo)

	// Direct-NS counts depend only on the interned chain; owned counts on
	// (chain, registered domain). Memoizing on those keys makes this pass
	// touch each distinct chain's TCB once instead of once per name.
	g := s.Graph
	directByChain := map[int32]int{}
	type ownKey struct {
		cid int32
		rd  string
	}
	ownedByChainRD := map[ownKey]int{}

	var ownedSum, directSum float64
	counted := 0
	for _, n := range names {
		cid, ok := g.NameChainID(n)
		if !ok {
			continue
		}
		chain := g.ChainZoneIDs(cid)
		if len(chain) == 0 {
			continue
		}
		direct, ok := directByChain[cid]
		if !ok {
			direct = len(g.ZoneNSIDs(chain[len(chain)-1]))
			directByChain[cid] = direct
		}
		owned := 0
		if rd, err := dnsname.RegisteredDomain(n); err == nil {
			key := ownKey{cid: cid, rd: rd}
			owned, ok = ownedByChainRD[key]
			if !ok {
				for _, id := range g.ChainTCBIDs(cid) {
					if hrd, err2 := dnsname.RegisteredDomain(g.Host(id)); err2 == nil && hrd == rd {
						owned++
					}
				}
				ownedByChainRD[key] = owned
			}
		}
		ownedSum += float64(owned)
		directSum += float64(direct)
		counted++
	}
	ownedMean, directMean := 0.0, 0.0
	if counted > 0 {
		ownedMean = ownedSum / float64(counted)
		directMean = directSum / float64(counted)
	}

	affected := 0
	for _, v := range vulns {
		if v > 0 {
			affected++
		}
	}

	return &Summary{
		Names:             len(sizes),
		Servers:           s.Graph.NumHosts(),
		VulnerableServers: s.VulnerableHosts(),
		AffectedNames:     affected,
		TCB:               NewCDF(sizes),
		VulnPerTCB:        NewCDF(vulns),
		DirectMean:        directMean,
		OwnedMean:         ownedMean,
	}
}
