package analysis

import (
	"dnstrust/internal/crawler"
)

// Summary carries the paper's headline in-text numbers.
type Summary struct {
	// Names surveyed successfully.
	Names int
	// Servers discovered (the paper's 166771).
	Servers int
	// VulnerableServers have known exploits (the paper's 27141, 17%).
	VulnerableServers int
	// AffectedNames have >= 1 vulnerable TCB member (the paper's 264599, 45%).
	AffectedNames int
	// TCB is the distribution of TCB sizes (mean 46, median 26).
	TCB *CDF
	// VulnPerTCB is the distribution of vulnerable-server counts per TCB
	// (mean 4.1).
	VulnPerTCB *CDF
	// DirectMean is the mean number of directly trusted servers (the NS
	// set of the name's own zone) — the paper's 2.2; the rest of the TCB
	// is transitive trust.
	DirectMean float64
	// OwnedMean is the mean number of TCB servers inside the name's own
	// registered domain (in-bailiwick operation).
	OwnedMean float64
}

// Summarize computes the headline statistics over the given names.
func Summarize(s *crawler.Survey, names []string) *Summary {
	sizes := TCBSizes(s, names)
	vulns := VulnInTCB(s, names)

	var ownedSum, directSum float64
	counted := 0
	for _, n := range names {
		owned, _, err := s.Graph.OwnedServers(n)
		if err != nil {
			continue
		}
		direct, err := s.Graph.DirectNS(n)
		if err != nil {
			continue
		}
		ownedSum += float64(len(owned))
		directSum += float64(len(direct))
		counted++
	}
	ownedMean, directMean := 0.0, 0.0
	if counted > 0 {
		ownedMean = ownedSum / float64(counted)
		directMean = directSum / float64(counted)
	}

	affected := 0
	for _, v := range vulns {
		if v > 0 {
			affected++
		}
	}

	return &Summary{
		Names:             len(sizes),
		Servers:           s.Graph.NumHosts(),
		VulnerableServers: s.VulnerableHosts(),
		AffectedNames:     affected,
		TCB:               NewCDF(sizes),
		VulnPerTCB:        NewCDF(vulns),
		DirectMean:        directMean,
		OwnedMean:         ownedMean,
	}
}
