// Package analysis computes the statistics behind every figure and
// headline number of the paper from a crawl survey: TCB size
// distributions (Figure 2), per-TLD averages (Figures 3 and 4),
// vulnerability poisoning (Figures 5 and 6), bottleneck min-cuts
// (Figure 7), and nameserver control rankings (Figures 8 and 9).
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over integer observations.
type CDF struct {
	sorted []int
}

// NewCDF builds a CDF from unsorted observations (copied, then sorted).
func NewCDF(xs []int) *CDF {
	cp := make([]int, len(xs))
	copy(cp, xs)
	sort.Ints(cp)
	return &CDF{sorted: cp}
}

// N returns the number of observations.
func (c *CDF) N() int { return len(c.sorted) }

// Mean returns the arithmetic mean (0 for empty).
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, x := range c.sorted {
		sum += float64(x)
	}
	return sum / float64(len(c.sorted))
}

// Median returns the 50th percentile.
func (c *CDF) Median() int { return c.Quantile(0.5) }

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest rank.
func (c *CDF) Quantile(q float64) int {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Max returns the largest observation (0 for empty).
func (c *CDF) Max() int {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// FracAbove returns the fraction of observations strictly greater than x.
func (c *CDF) FracAbove(x int) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchInts(c.sorted, x+1)
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// FracAtMost returns the fraction of observations <= x (the CDF value).
func (c *CDF) FracAtMost(x int) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchInts(c.sorted, x+1)
	return float64(i) / float64(len(c.sorted))
}

// Point is one (x, cumulative %) sample of a rendered CDF curve.
type Point struct {
	X   int
	Pct float64
}

// Curve samples the CDF at every distinct value, producing the series a
// figure plots. For large supports it subsamples to at most maxPoints.
func (c *CDF) Curve(maxPoints int) []Point {
	if len(c.sorted) == 0 {
		return nil
	}
	var pts []Point
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); i++ {
		// Last index of each run of equal values gives the step height.
		if i+1 < len(c.sorted) && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		pts = append(pts, Point{X: c.sorted[i], Pct: 100 * float64(i+1) / n})
	}
	if maxPoints > 0 && len(pts) > maxPoints {
		sampled := make([]Point, 0, maxPoints)
		step := float64(len(pts)-1) / float64(maxPoints-1)
		for k := 0; k < maxPoints; k++ {
			sampled = append(sampled, pts[int(math.Round(float64(k)*step))])
		}
		pts = sampled
	}
	return pts
}

func (c *CDF) String() string {
	return fmt.Sprintf("CDF{n=%d median=%d mean=%.1f max=%d}", c.N(), c.Median(), c.Mean(), c.Max())
}
