package analysis

import (
	"sort"

	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
)

// TCBSizes returns |TCB(name)| for each name (Figure 2's raw data).
// Names missing from the survey are skipped.
func TCBSizes(s *crawler.Survey, names []string) []int {
	out := make([]int, 0, len(names))
	for _, n := range names {
		if sz := s.Graph.TCBSize(n); sz >= 0 {
			out = append(out, sz)
		}
	}
	return out
}

// TLDAverage is one bar of Figure 3 or 4.
type TLDAverage struct {
	TLD     string
	Kind    dnsname.Kind
	Names   int
	MeanTCB float64
}

// TLDAverages computes the mean TCB size per top-level domain, sorted by
// decreasing mean — the bars of Figures 3 (generic) and 4 (country-code).
func TLDAverages(s *crawler.Survey, names []string) []TLDAverage {
	sum := map[string]float64{}
	cnt := map[string]int{}
	for _, n := range names {
		sz := s.Graph.TCBSize(n)
		if sz < 0 {
			continue
		}
		tld := dnsname.TLD(n)
		sum[tld] += float64(sz)
		cnt[tld]++
	}
	out := make([]TLDAverage, 0, len(sum))
	for tld, total := range sum {
		out = append(out, TLDAverage{
			TLD:     tld,
			Kind:    dnsname.KindOf(tld),
			Names:   cnt[tld],
			MeanTCB: total / float64(cnt[tld]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanTCB != out[j].MeanTCB {
			return out[i].MeanTCB > out[j].MeanTCB
		}
		return out[i].TLD < out[j].TLD
	})
	return out
}

// FilterKind keeps the averages of one TLD class.
func FilterKind(avgs []TLDAverage, kind dnsname.Kind) []TLDAverage {
	var out []TLDAverage
	for _, a := range avgs {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// MacroAverage averages per-TLD means (each TLD weighted equally), the
// quantity behind the paper's "gTLD average 87 / ccTLD average 209".
func MacroAverage(avgs []TLDAverage) float64 {
	if len(avgs) == 0 {
		return 0
	}
	var sum float64
	for _, a := range avgs {
		sum += a.MeanTCB
	}
	return sum / float64(len(avgs))
}

// chainVulnCounts computes, per interned chain, the TCB size and the
// number of vulnerable TCB members — each chain's (shared) TCB slice is
// scanned exactly once, and every name on the chain reuses the entry.
// Entries are computed lazily: sizes[c] < 0 marks an untouched chain.
// With a persistent memo attached, entries survive across calls and
// generations: the per-call pass starts from the memo's counts and
// writes fresh ones back.
type chainVulnCounts struct {
	s      *crawler.Survey
	memo   *ChainMemo
	gen    int64
	vulnID []bool
	sizes  []int
	vulns  []int
}

func newChainVulnCounts(s *crawler.Survey, memo *ChainMemo) *chainVulnCounts {
	n := s.Graph.NumChains()
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = -1
	}
	return &chainVulnCounts{
		s:      s,
		memo:   memo,
		gen:    s.Stats.Generation,
		vulnID: vulnerableIDs(s),
		sizes:  sizes,
		vulns:  make([]int, n),
	}
}

// of returns (TCB size, vulnerable count) for a name, or ok=false for
// names missing from the survey.
func (c *chainVulnCounts) of(name string) (size, vuln int, ok bool) {
	cid, ok := c.s.Graph.NameChainID(name)
	if !ok {
		return 0, 0, false
	}
	if c.sizes[cid] < 0 {
		if size, vuln, ok := c.memo.count(cid, c.gen); ok {
			c.sizes[cid], c.vulns[cid] = size, vuln
			return size, vuln, true
		}
		ids := c.s.Graph.ChainTCBIDs(cid)
		v := 0
		for _, id := range ids {
			if c.vulnID[id] {
				v++
			}
		}
		c.sizes[cid] = len(ids)
		c.vulns[cid] = v
		c.memo.storeCount(cid, c.gen, len(ids), v)
	}
	return c.sizes[cid], c.vulns[cid], true
}

// VulnInTCB returns, per name, the number of TCB members with known
// exploits (Figure 5's raw data).
func VulnInTCB(s *crawler.Survey, names []string) []int {
	return VulnInTCBMemo(s, names, nil)
}

// VulnInTCBMemo is VulnInTCB through a persistent chain memo (nil is
// allowed: dedup within the call only).
func VulnInTCBMemo(s *crawler.Survey, names []string, memo *ChainMemo) []int {
	counts := newChainVulnCounts(s, memo)
	out := make([]int, 0, len(names))
	for _, n := range names {
		_, v, ok := counts.of(n)
		if !ok {
			continue
		}
		out = append(out, v)
	}
	return out
}

// TCBSafety returns, per name, the percentage of TCB members with no
// known exploits (Figure 6's raw data). Names with empty TCBs are
// reported 100% safe.
func TCBSafety(s *crawler.Survey, names []string) []float64 {
	return TCBSafetyMemo(s, names, nil)
}

// TCBSafetyMemo is TCBSafety through a persistent chain memo.
func TCBSafetyMemo(s *crawler.Survey, names []string, memo *ChainMemo) []float64 {
	counts := newChainVulnCounts(s, memo)
	out := make([]float64, 0, len(names))
	for _, n := range names {
		size, vuln, ok := counts.of(n)
		if !ok {
			continue
		}
		if size == 0 {
			out = append(out, 100)
			continue
		}
		out = append(out, 100*float64(size-vuln)/float64(size))
	}
	return out
}

// AffectedNames counts the names with at least one vulnerable TCB member
// (the paper's 264599-of-593160, i.e. 45%).
func AffectedNames(s *crawler.Survey, names []string) int {
	n := 0
	for _, c := range VulnInTCB(s, names) {
		if c > 0 {
			n++
		}
	}
	return n
}

// vulnerableIDs builds a host-id-indexed vulnerability lookup.
func vulnerableIDs(s *crawler.Survey) []bool {
	hosts := s.Graph.Hosts()
	out := make([]bool, len(hosts))
	for id, h := range hosts {
		out[id] = s.Vulnerable(h)
	}
	return out
}

// SafetyCurve renders Figure 6: names sorted by TCB safety percentage,
// plotted as (rank percentile, safety%).
type SafetyPoint struct {
	RankPct float64
	Safety  float64
}

// SafetyDistribution sorts the per-name safety percentages ascending and
// samples them (Figure 6's curve).
func SafetyDistribution(safety []float64, maxPoints int) []SafetyPoint {
	cp := make([]float64, len(safety))
	copy(cp, safety)
	sort.Float64s(cp)
	var pts []SafetyPoint
	n := len(cp)
	if n == 0 {
		return nil
	}
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	for i := 0; i < n; i += step {
		pts = append(pts, SafetyPoint{
			RankPct: 100 * float64(i+1) / float64(n),
			Safety:  cp[i],
		})
	}
	return pts
}
