package analysis

import (
	"context"
	"reflect"
	"testing"

	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
)

// memoWorld builds a two-chain survey: chain A (com, x.com) and chain B
// (com, y.com), each carrying one name, stamped with the given
// generation.
func memoWorld(t *testing.T, gen int64) *crawler.Survey {
	t.Helper()
	b := core.NewBuilder(0)
	b.ObserveZone("com", []string{"a.ns.com"})
	b.ObserveChain("a.ns.com", []string{"com"})
	b.ObserveZone("x.com", []string{"ns.x.com"})
	b.ObserveChain("ns.x.com", []string{"com", "x.com"})
	b.ObserveZone("y.com", []string{"ns.y.com", "ns.offsite.org"})
	b.ObserveChain("ns.y.com", []string{"com", "y.com"})
	b.Complete("www.x.com", []string{"com", "x.com"})
	b.Complete("www.y.com", []string{"com", "y.com"})
	s := crawler.FromGraph(b.Finish())
	s.Stats.Generation = gen
	return s
}

// TestChainMemoServesWarmPass checks the core promise: a second
// analysis pass over the same generation is served from the memo and
// returns identical results.
func TestChainMemoServesWarmPass(t *testing.T) {
	s := memoWorld(t, 1)
	memo := NewChainMemo()
	ctx := context.Background()

	cold, err := BottlenecksMemo(ctx, s, s.Names, 2, memo)
	if err != nil {
		t.Fatal(err)
	}
	cidX, _ := s.Graph.NameChainID("www.x.com")
	if _, ok := memo.cut(cidX, 1); !ok {
		t.Fatal("cold pass did not populate the memo")
	}
	warm, err := BottlenecksMemo(ctx, s, s.Names, 2, memo)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Names != cold.Names || warm.FullyVulnerable != cold.FullyVulnerable {
		t.Errorf("warm pass differs: %+v vs %+v", warm, cold)
	}

	sumCold := SummarizeMemo(s, s.Names, memo)
	sumWarm := SummarizeMemo(s, s.Names, memo)
	if !reflect.DeepEqual(sumCold.VulnPerTCB, sumWarm.VulnPerTCB) || sumCold.Names != sumWarm.Names {
		t.Error("memoized summary differs between passes")
	}

	r1, err := BottleneckOfMemo(s, "www.x.com", memo)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BottleneckOfMemo(s, "www.x.com", memo)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("memo must hand out caller-owned clones, not the cached result")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("memoized bottleneck differs: %+v vs %+v", r1, r2)
	}
}

// TestChainMemoAdvanceInvalidatesTouchedChains checks per-chain
// invalidation: a late-attached host invalidates exactly the chains
// whose TCB contains it — for every generation — while untouched chains
// keep serving all generations.
func TestChainMemoAdvanceInvalidatesTouchedChains(t *testing.T) {
	s1 := memoWorld(t, 1)
	memo := NewChainMemo()
	if _, err := BottlenecksMemo(context.Background(), s1, s1.Names, 1, memo); err != nil {
		t.Fatal(err)
	}
	cidX, _ := s1.Graph.NameChainID("www.x.com")
	cidY, _ := s1.Graph.NameChainID("www.y.com")

	// Generation 2 late-attaches the chain of ns.x.com — a member of
	// chain X's TCB but not of chain Y's.
	hid, ok := s1.Graph.HostID("ns.x.com")
	if !ok {
		t.Fatal("ns.x.com not interned")
	}
	s2 := memoWorld(t, 2)
	s2.Stats.LateAttachedHosts = []int32{hid}
	memo.Advance(s1, s2)

	if _, ok := memo.cut(cidX, 2); ok {
		t.Error("touched chain still served at the new generation")
	}
	if _, ok := memo.cut(cidX, 1); ok {
		t.Error("touched chain still served at the old generation (entry generation is unknowable now)")
	}
	if _, ok := memo.cut(cidY, 2); !ok {
		t.Error("untouched chain dropped by Advance")
	}
	if _, ok := memo.cut(cidY, 1); !ok {
		t.Error("untouched chain no longer serves the old generation")
	}

	// Recomputing the touched chain against generation 2 re-populates
	// it for generation 2 — but a generation-1 view must still miss,
	// because the chain changed between the two.
	if _, err := BottleneckOfMemo(s2, "www.x.com", memo); err != nil {
		t.Fatal(err)
	}
	if _, ok := memo.cut(cidX, 2); !ok {
		t.Error("recomputed chain not served at its own generation")
	}
	if _, ok := memo.cut(cidX, 1); ok {
		t.Error("generation-1 view served a result computed after the chain changed")
	}

	// An Advance with no late attachments is a no-op.
	s3 := memoWorld(t, 3)
	memo.Advance(s2, s3)
	if _, ok := memo.cut(cidX, 3); !ok {
		t.Error("untouched advance dropped entries")
	}
	if _, ok := memo.cut(cidY, 3); !ok {
		t.Error("untouched advance dropped entries")
	}
}
