package dnstrust

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestMonitorSnapshotColdStart is the headline restart property: a
// session reopened from a snapshot file reproduces the saved
// generation's Summary byte-for-byte with zero transport queries, and
// then keeps crawling incrementally.
func TestMonitorSnapshotColdStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.snap")
	opts := Options{Seed: 11, Names: 400, SnapshotFile: path}

	m := openTestMonitor(t, opts)
	ctx := context.Background()
	corpus := m.World().Corpus
	v1, err := m.Add(ctx, corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := m.Snapshot(); err != nil || n == 0 {
		t.Fatalf("Snapshot() = %d bytes, %v", n, err)
	}
	wantSum, err := json.Marshal(v1.Summary())
	if err != nil {
		t.Fatal(err)
	}
	wantNames := v1.Names()

	m2 := openTestMonitor(t, opts)
	if got := m2.Queries(); got != 0 {
		t.Fatalf("cold start issued %d transport queries, want 0", got)
	}
	if m2.Generation() != v1.Generation() {
		t.Fatalf("restored generation = %d, want %d", m2.Generation(), v1.Generation())
	}
	v2 := m2.At()
	if !reflect.DeepEqual(v2.Names(), wantNames) {
		t.Fatal("restored names differ")
	}
	gotSum, err := json.Marshal(v2.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSum) != string(wantSum) {
		t.Fatalf("restored summary differs:\n got %s\nwant %s", gotSum, wantSum)
	}
	if got := m2.Queries(); got != 0 {
		t.Fatalf("restored Summary touched the transport: %d queries", got)
	}
	for _, n := range wantNames[:10] {
		w1, err1 := v1.Bottleneck(n)
		w2, err2 := v2.Bottleneck(n)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(w1, w2) {
			t.Fatalf("min-cut for %q differs after restore (%v, %v)", n, err1, err2)
		}
	}

	// The restored session is live: a new Add commits the next generation.
	v3, err := m2.Add(ctx, "www.fresh.example")
	if err != nil {
		t.Fatal(err)
	}
	if v3.Generation() != v1.Generation()+1 {
		t.Fatalf("post-restore Add committed generation %d, want %d",
			v3.Generation(), v1.Generation()+1)
	}
}

// TestMonitorSnapshotSavedOnClose checks the durable-session loop with
// no explicit Snapshot call at all: Close saves, the next Open restores.
func TestMonitorSnapshotSavedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.snap")
	opts := Options{Seed: 13, Names: 150, SnapshotFile: path}
	m := openTestMonitor(t, opts)
	if _, err := m.Add(context.Background(), m.World().Corpus...); err != nil {
		t.Fatal(err)
	}
	queried := m.Queries()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close did not save the snapshot: %v", err)
	}
	if queried == 0 {
		t.Fatal("first session issued no queries")
	}

	m2 := openTestMonitor(t, opts)
	if m2.Generation() != 1 || m2.Queries() != 0 {
		t.Fatalf("restored session: generation %d, %d queries", m2.Generation(), m2.Queries())
	}
	if m2.At().NumNames() != len(m2.World().Corpus) {
		t.Fatalf("restored %d names, want %d", m2.At().NumNames(), len(m2.World().Corpus))
	}
}

// TestMonitorSnapshotUnconfigured: Snapshot without a configured file is
// an error; SaveSnapshot with an explicit path still works.
func TestMonitorSnapshotUnconfigured(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 60})
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("Snapshot without Options.SnapshotFile must fail")
	}
	path := filepath.Join(t.TempDir(), "explicit.snap")
	if n, err := m.SaveSnapshot(path); err != nil || n == 0 {
		t.Fatalf("SaveSnapshot = %d, %v", n, err)
	}
}

// TestMonitorSnapshotCorruptFailsClosed: a corrupt snapshot file must
// fail the open loudly, never silently start fresh over it.
func TestMonitorSnapshotCorruptFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, []byte("DNSTSNP\x00 not actually a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(context.Background(), Options{Seed: 7, Names: 60, SnapshotFile: path})
	if err == nil {
		t.Fatal("corrupt snapshot must fail the open")
	}
}
