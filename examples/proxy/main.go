// Serving-path walkthrough: the paper's §3.2 measurement turned into an
// answer-path decision. A monitored survey condemns www.fbi.gov (its
// delegation chain passes through a hijackable BIND 8.2.4 server), and
// a trust-aware resolving proxy serves real UDP clients accordingly:
// REFUSED for the condemned chain without ever contacting upstream,
// NOERROR for a clean chain, answered-but-logged for a narrow one.
//
//	go run ./examples/proxy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"dnstrust"
	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/proxy"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/verdict"
)

// servingWorld is the FBI case study plus two contrasting chains: a
// clean two-server zone (allow) and a single-server zone (flag:
// narrow cut).
func servingWorld() *topology.World {
	b := topology.NewWorld()
	gov := []string{"a.gov-servers.net", "b.gov-servers.net"}
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net", "c.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("gov", gov...)
	b.Zone("gov-servers.net", gov...)
	b.Zone("gtld-servers.net", gtld...)

	b.Zone("fbi.gov", "dns.sprintip.com", "dns2.sprintip.com")
	b.Zone("sprintip.com",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.Zone("telemail.net",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.SetBanner("dns.sprintip.com", "BIND 9.2.2")
	b.SetBanner("dns2.sprintip.com", "BIND 9.2.2")
	b.SetBanner("reston-ns1.telemail.net", "BIND 9.2.3")
	b.SetBanner("reston-ns2.telemail.net", "BIND 8.2.4") // hijackable
	b.Host("www.fbi.gov")

	b.Zone("example.com", "ns1.example.com", "ns2.example.com")
	b.SetBanner("ns1.example.com", "BIND 9.2.3")
	b.SetBanner("ns2.example.com", "BIND 9.2.3")
	b.Host("www.example.com")

	b.Zone("solo.com", "ns1.solo.com")
	b.SetBanner("ns1.solo.com", "BIND 9.2.3")
	b.Host("www.solo.com")

	return &topology.World{
		Registry: b.Finalize(),
		Corpus:   []string{"www.fbi.gov", "www.example.com", "www.solo.com"},
	}
}

func main() {
	ctx := context.Background()
	world := servingWorld()

	// The monitor surveys the corpus; the verdict cache rides its
	// commits (OnCommit fires inside every Add), evicting exactly the
	// names whose chains each generation changed.
	m, err := dnstrust.OpenWorld(ctx, world, dnstrust.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{
		TTL: time.Hour,
		Add: func(ctx context.Context, names ...string) error {
			_, err := m.Add(ctx, names...)
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	m.OnCommit(func(v *dnstrust.View) { cache.Advance(v.Survey()) })
	if _, err := m.Add(ctx, world.Corpus...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surveyed %d names (generation %d)\n\n", m.At().NumNames(), m.Generation())

	for _, n := range world.Corpus {
		v := cache.Lookup(n)
		fmt.Printf("%-16s -> %-6s %s (tcb=%d cut=%d)\n", n, v.Level, v.Reasons, v.TCBSize, v.Cut)
	}

	// The proxy: verdict first, then iterative resolution upstream.
	src := world.Registry.Source()
	defer src.Close()
	r, err := resolver.New(src, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		log.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{Resolver: r, Cache: cache, Logger: log.New(os.Stdout, "policy: ", 0)})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := dnsserver.Start(ctx, "127.0.0.1:0", dnsserver.Config{Handler: p})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("\nproxy serving on %s\n\n", addr)

	c := dnsclient.New(dnsclient.Config{Timeout: 2 * time.Second})
	for _, n := range []string{"www.fbi.gov", "www.example.com", "www.solo.com", "www.new-name.gov"} {
		resp, err := c.Query(ctx, addr, n, dnswire.TypeA, dnswire.ClassINET)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-16s -> %v, %d answer(s)\n", n, resp.RCode, len(resp.Answers))
	}

	// www.new-name.gov was answered provisionally and queued; once the
	// background crawl commits, the verdict is real.
	for cache.Lookup("www.new-name.gov").Provisional {
		time.Sleep(5 * time.Millisecond)
	}
	v := cache.Lookup("www.new-name.gov")
	fmt.Printf("\nafter background crawl (generation %d): www.new-name.gov -> %s (%s)\n",
		v.Generation, v.Level, v.Reasons)

	// Drain in-flight queries before closing (bounded by the context).
	sdCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		log.Fatal(err)
	}
	st := p.Stats()
	fmt.Printf("proxy stats: served=%d refused=%d flagged=%d failed=%d\n",
		st.Served, st.Refused, st.Flagged, st.Failed)
}
