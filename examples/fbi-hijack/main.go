// FBI-hijack reproduces the §3.2 case study end to end, at the wire
// level: www.fbi.gov is served by dns{,2}.sprintip.com, whose zone is
// served by reston-ns[123].telemail.net; reston-ns2 runs BIND 8.2.4 with
// four well-documented exploits. The example fingerprints the chain,
// compromises reston-ns2 (with a link-saturation DoS on its siblings,
// as the paper describes), and shows a genuine iterative resolution being
// diverted to the attacker's address — forged DNS messages and all.
//
//	go run ./examples/fbi-hijack
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"dnstrust/internal/crawler"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/hijack"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func main() {
	ctx := context.Background()
	reg := topology.FBIWorld()
	const target = "www.fbi.gov"

	// Step 1: survey the dependency chain, exactly as the paper's crawler
	// would.
	r, err := reg.Resolver(nil)
	if err != nil {
		log.Fatal(err)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(ctx, target)
	if err != nil {
		log.Fatal(err)
	}
	survey := crawler.FromSnapshot(w.Snapshot(map[string][]string{target: chain}, nil))

	fmt.Printf("dependency chain of %s:\n", target)
	probe := reg.ProbeFunc(nil)
	for _, h := range survey.Graph.Hosts() {
		banner, err := probe(ctx, h)
		if err != nil {
			continue
		}
		shown := banner
		if shown == "" {
			shown = "(hidden)"
		}
		vulns := survey.DB.VulnsForBanner(banner)
		if len(vulns) > 0 {
			var names []string
			for _, v := range vulns {
				names = append(names, v.Name)
			}
			fmt.Printf("  %-28s %-12s VULNERABLE: %v\n", h, shown, names)
		} else {
			fmt.Printf("  %-28s %-12s\n", h, shown)
		}
	}

	// Step 2: honest resolution.
	honest, err := r.Resolve(ctx, target, dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhonest resolution: %s -> %v (%d server contacts)\n",
		target, honest.Addrs, len(honest.Trace))

	// Step 3: the attack. Crack reston-ns2 with its libbind exploit,
	// saturate the links of its siblings so the resolver must use it.
	attacker := netip.MustParseAddr("203.0.113.66")
	compromised := reg.Server("reston-ns2.telemail.net")
	reg.SetLame("reston-ns1.telemail.net", true)
	reg.SetLame("reston-ns3.telemail.net", true)

	forged := hijack.NewForgingTransport(
		reg.Source(),
		[]netip.Addr{compromised.Addr},
		attacker,
		"ns.attacker.example",
	)
	evil, err := reg.Resolver(forged)
	if err != nil {
		log.Fatal(err)
	}
	diverted, err := evil.Resolve(ctx, target, dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder attack (compromise reston-ns2, DoS reston-ns1/3):\n")
	fmt.Printf("  %s -> %v  (%d forged responses on the path)\n",
		target, diverted.Addrs, forged.Diverted())
	if len(diverted.Addrs) == 1 && diverted.Addrs[0] == attacker {
		fmt.Printf("  HIJACKED: clients now reach the attacker's web server.\n")
	}

	// Step 4: the analytic verdict agrees.
	atk, err := hijack.New(survey.Graph,
		[]string{"reston-ns2.telemail.net"},
		[]string{"reston-ns1.telemail.net", "reston-ns3.telemail.net"})
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := atk.Verdict(target)
	if err != nil {
		log.Fatal(err)
	}
	frac, err := atk.MonteCarlo(target, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytic verdict: %v hijack (%.0f%% of 2000 sampled strategies diverted)\n",
		verdict, 100*frac)
}
