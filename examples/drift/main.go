// Drift walkthrough: the paper warns that transitive trust *drifts* —
// a name's TCB grows silently as delegations change — and this example
// measures that drift both ways the library supports:
//
//  1. Live, inside one Monitor: a flaky dependency is dark during the
//     first crawl, recovers, and the next generation's diff pinpoints
//     the name whose trust surface silently grew.
//
//  2. Offline, between recordings: two byte-stable query logs of the
//     same corpus — one with a delegation removed between them — are
//     replayed and diffed without touching any transport, surfacing the
//     dropped host as a zombie dependency (still trusted through a
//     stale delegation).
//
//     go run ./examples/drift
package main

import (
	"context"
	"fmt"
	"log"

	"dnstrust"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

func main() {
	ctx := context.Background()

	// ---- Part 1: drift inside one monitored session -----------------
	fmt.Println("== live drift: a lame dependency recovers between generations ==")

	reg := buildWorld(false)
	corpus := []string{"www.corp.com", "www.other.com"}
	// The whole legacy.net zone is dark during the first crawl, so the
	// address chains of its nameservers cannot be walked.
	for _, h := range []string{"ns.legacy.net", "nsz.legacy.net"} {
		if err := reg.SetLame(h, true); err != nil {
			log.Fatal(err)
		}
	}

	// Retain enough history to diff any pair of generations later.
	m, err := dnstrust.OpenWorld(ctx, &topology.World{Registry: reg, Corpus: corpus},
		dnstrust.Options{Retain: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	v1, err := m.Add(ctx, corpus...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d: TCB(www.corp.com) = %d hosts (legacy.net is dark)\n",
		v1.Generation(), v1.Survey().Graph.TCBSize("www.corp.com"))

	// The zone comes back; re-adding the same corpus re-asks only the
	// previously failed questions and attaches the recovered dependency
	// tail late.
	for _, h := range []string{"ns.legacy.net", "nsz.legacy.net"} {
		if err := reg.SetLame(h, false); err != nil {
			log.Fatal(err)
		}
	}
	v2, err := m.Add(ctx, corpus...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d: TCB(www.corp.com) = %d hosts\n",
		v2.Generation(), v2.Survey().Graph.TCBSize("www.corp.com"))

	// The timeline answers "what changed, and did my trust surface
	// grow?" — identical chains diff to nothing, so only the drifted
	// name is examined.
	d, err := m.Between(v1.Generation(), v2.Generation())
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range d.NamesAdded {
		fmt.Printf("drift: %s became resolvable (its only nameserver was dark)\n", n)
	}
	for _, c := range d.Changed {
		fmt.Printf("drift: %s TCB %d -> %d, gained %v (min-cut %d -> %d)\n",
			c.Name, c.OldTCB, c.NewTCB, c.TCBAdded, c.OldCut, c.NewCut)
	}

	// ---- Part 2: the three-line offline drift study ------------------
	fmt.Println("\n== recorded drift: crawl, wait, crawl again, diff the logs ==")

	// "Time t0": record a crawl of the original world.
	logThen := record(ctx, buildWorld(false), corpus)
	// "Time t1": the corp.com operator drops the legacy nameserver —
	// but other.com still delegates through it.
	logNow := record(ctx, buildWorld(true), corpus)

	// The drift study proper: replay both recordings strictly offline
	// and diff. Zero live queries, by construction.
	diff, err := dnstrust.DiffLogs(ctx, logThen, logNow, dnstrust.Options{
		Corpus: corpus,
		Roots:  reg.RootServers(),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, zc := range diff.ZoneChanges {
		fmt.Printf("zone %s: NS removed %v\n", zc.Apex, zc.NSRemoved)
	}
	for _, c := range diff.Changed {
		fmt.Printf("%s: TCB %d -> %d (lost %v)\n", c.Name, c.OldTCB, c.NewTCB, c.TCBRemoved)
	}
	for _, z := range diff.Zombies {
		fmt.Printf("ZOMBIE %s (%s): dropped by %v, yet still in %d name(s)' TCB\n",
			z.Host, z.Kind, z.Zones, z.Names)
	}
}

// buildWorld assembles the example Internet; with dropLegacy, zone
// corp.com no longer lists nsz.legacy.net (the injected delegation
// change between the two recordings).
func buildWorld(dropLegacy bool) *topology.Registry {
	b := topology.NewWorld()
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("gtld-servers.net", gtld...)
	corpNS := []string{"ns1.host.net", "nsz.legacy.net"}
	if dropLegacy {
		corpNS = corpNS[:1]
	}
	b.Zone("corp.com", corpNS...)
	b.Zone("other.com", "nsz.legacy.net")
	b.Zone("host.net", "ns1.host.net")
	b.Zone("legacy.net", "ns.legacy.net", "nsz.legacy.net")
	b.Host("www.corp.com")
	b.Host("www.other.com")
	return b.Finalize()
}

// record crawls a world once with recording enabled and returns the
// byte-stable query log (in a real study this is dnssurvey -record, run
// at two different times).
func record(ctx context.Context, reg *topology.Registry, corpus []string) *dnstrust.QueryLog {
	lg := transport.NewLog()
	m, err := dnstrust.OpenWorld(ctx, &topology.World{Registry: reg, Corpus: corpus},
		dnstrust.Options{RecordLog: lg})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Add(ctx, corpus...); err != nil {
		log.Fatal(err)
	}
	if err := m.Close(); err != nil {
		log.Fatal(err)
	}
	return lg
}
