// Quickstart: generate a small synthetic Internet, survey it, and print
// the paper's headline statistics plus one name's trusted computing base.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dnstrust"
)

func main() {
	ctx := context.Background()

	// A small world: 3000 web names over a few thousand zones. The
	// paper's scale is Names: 593160.
	study, err := dnstrust.NewStudy(ctx, dnstrust.Options{Seed: 1, Names: 3000})
	if err != nil {
		log.Fatal(err)
	}

	sum := study.Summary()
	fmt.Printf("surveyed %d names across %d nameservers\n", sum.Names, sum.Servers)
	fmt.Printf("TCB size: median %d, mean %.1f, max %d\n",
		sum.TCB.Median(), sum.TCB.Mean(), sum.TCB.Max())
	fmt.Printf("directly trusted servers per name: %.1f (the rest is transitive trust)\n",
		sum.DirectMean)
	fmt.Printf("vulnerable servers: %d (%.1f%%) -> affected names: %d (%.1f%%)\n",
		sum.VulnerableServers,
		100*float64(sum.VulnerableServers)/float64(sum.Servers),
		sum.AffectedNames,
		100*float64(sum.AffectedNames)/float64(sum.Names))

	// Inspect one name's dependency set.
	name := study.Survey.Names[0]
	tcb, err := study.TCB(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s transitively trusts %d nameservers, e.g.:\n", name, len(tcb))
	for i, h := range tcb {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(tcb)-8)
			break
		}
		fmt.Printf("  %s\n", h)
	}

	// How hard is a complete hijack of that name?
	res, err := study.Bottleneck(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomplete hijack of %s needs %d servers (%d already vulnerable, %d safe)\n",
		name, res.Size, res.VulnInCut, res.SafeInCut)

	// The paper's §5 stopgap: audit where the trust actually goes.
	findings, err := study.Audit(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrust audit of %s (%d findings):\n", name, len(findings))
	for i, f := range findings {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(findings)-6)
			break
		}
		fmt.Printf("  %s\n", f)
	}
}
