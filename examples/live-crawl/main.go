// Live-crawl boots the Ukraine scenario world as real DNS servers on
// loopback (one UDP+TCP listener per nameserver) and runs the survey
// crawler over actual sockets: iterative resolution from the root,
// referrals, glue, version.bind fingerprinting — the full network path,
// then verifies the wire crawl matches the in-memory one.
//
//	go run ./examples/live-crawl
package main

import (
	"context"
	"fmt"
	"log"

	"dnstrust/internal/crawler"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func main() {
	ctx := context.Background()
	reg := topology.UkraineWorld()
	const target = "www.rkc.lviv.ua"

	live, err := topology.StartLive(ctx, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	fmt.Printf("booted %d real DNS servers on loopback\n", live.NumServers())
	for _, rs := range reg.RootServers() {
		fmt.Printf("  root %s at %s\n", rs.Host, live.Addr(rs.Host))
	}

	// Crawl over the wire.
	r, err := live.Resolver()
	if err != nil {
		log.Fatal(err)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(ctx, target)
	if err != nil {
		log.Fatal(err)
	}
	survey := crawler.FromSnapshot(w.Snapshot(map[string][]string{target: chain}, nil))
	fmt.Printf("\ncrawled %s over UDP/TCP: %d queries, %d zones, %d nameservers\n",
		target, w.Queries(), survey.Graph.NumZones(), survey.Graph.NumHosts())

	// Fingerprint over the wire, too.
	vulnerable := 0
	for _, h := range survey.Graph.Hosts() {
		banner, err := live.VersionBind(ctx, h)
		if err != nil {
			continue
		}
		survey.Banner[h] = banner
		if vulns := survey.DB.VulnsForBanner(banner); len(vulns) > 0 {
			survey.Vulns[h] = vulns
			vulnerable++
			fmt.Printf("  %-24s %-14s %d known exploits\n", h, banner, len(vulns))
		}
	}

	tcb, err := survey.Graph.TCB(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: TCB of %d servers, %d exploitable\n", target, len(tcb), vulnerable)
	fmt.Println("the paper's small world: a Ukrainian government site depends on")
	for _, h := range tcb {
		switch {
		case hasSuffix(h, ".edu"), hasSuffix(h, ".edu.au"):
			fmt.Printf("  a university nameserver: %s\n", h)
		}
	}

	// Cross-check against the in-memory crawl.
	dr, err := reg.Resolver(nil)
	if err != nil {
		log.Fatal(err)
	}
	dw := resolver.NewWalker(dr)
	if _, err := dw.WalkName(ctx, target); err != nil {
		log.Fatal(err)
	}
	directHosts := dw.Snapshot(nil, nil).Hosts()
	wireHosts := survey.Graph.Hosts()
	if len(directHosts) == len(wireHosts) {
		fmt.Printf("\nwire crawl matches in-memory crawl: %d nameservers discovered by both\n", len(wireHosts))
	} else {
		fmt.Printf("\nMISMATCH: wire %d vs direct %d\n", len(wireHosts), len(directHosts))
	}
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
