// Cornell-graph reproduces Figure 1 of the paper: the delegation graph of
// www.cs.cornell.edu, whose resolution transitively depends on
// nameservers at Rochester, Wisconsin, and — surprisingly — Michigan.
// It prints the dependency structure and emits Graphviz DOT on stdout
// (redirect to a file and render with `dot -Tsvg`).
//
//	go run ./examples/cornell-graph > figure1.dot
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"dnstrust/internal/crawler"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func main() {
	ctx := context.Background()
	reg := topology.Figure1World()

	r, err := reg.Resolver(nil)
	if err != nil {
		log.Fatal(err)
	}
	w := resolver.NewWalker(r)
	const name = "www.cs.cornell.edu"
	chain, err := w.WalkName(ctx, name)
	if err != nil {
		log.Fatal(err)
	}
	g := crawler.FromSnapshot(w.Snapshot(map[string][]string{name: chain}, nil)).Graph

	tcb, err := g.TCB(name)
	if err != nil {
		log.Fatal(err)
	}
	owned, external, err := g.OwnedServers(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s depends on %d nameservers (%d at Cornell, %d elsewhere)\n",
		name, len(tcb), len(owned), len(external))
	fmt.Fprintf(os.Stderr, "\nzone dependency chain (who trusts whom):\n")
	ids, err := g.ReachableZoneIDs(name)
	if err != nil {
		log.Fatal(err)
	}
	for _, z := range ids {
		apex := g.Zones()[z]
		fmt.Fprintf(os.Stderr, "  %-22s served by %d nameservers\n", apex+".", len(g.ZoneNS(apex)))
	}
	fmt.Fprintf(os.Stderr, "\nthe paper's point: Cornell never chose to trust umich.edu, yet:\n")
	for _, h := range external {
		fmt.Fprintf(os.Stderr, "  indirect dependency: %s\n", h)
	}

	dot, err := g.DOT(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dot)
}
