// Monitor quickstart: open a long-lived survey session, crawl
// incrementally, and query immutable views while the session stays
// open — the paper's transitive-trust audit as a continuous service.
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"

	"dnstrust"
)

func main() {
	ctx := context.Background()

	// Open a session over a small synthetic Internet. Nothing is
	// crawled yet; the corpus is just the world's name population.
	m, err := dnstrust.Open(ctx, dnstrust.Options{Seed: 1, Names: 3000})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	corpus := m.World().Corpus

	// First batch: survey a third of the corpus.
	v1, err := m.Add(ctx, corpus[:1000]...)
	if err != nil {
		log.Fatal(err)
	}
	sum1 := v1.Summary()
	fmt.Printf("generation %d: %d names, %d servers, mean TCB %.1f (%d transport queries)\n",
		v1.Generation(), sum1.Names, sum1.Servers, sum1.TCB.Mean(), m.Queries())

	// Second batch extends the survey without re-crawling anything the
	// first batch discovered: shared zones, chains, and queries are all
	// memoized in the resident engine.
	before := m.Queries()
	v2, err := m.Add(ctx, corpus[1000:]...)
	if err != nil {
		log.Fatal(err)
	}
	sum2 := v2.Summary()
	fmt.Printf("generation %d: %d names, %d servers, mean TCB %.1f (+%d queries for the new names)\n",
		v2.Generation(), sum2.Names, sum2.Servers, sum2.TCB.Mean(), m.Queries()-before)

	// Re-adding surveyed names is transport-free.
	before = m.Queries()
	if _, err := m.Add(ctx, corpus[:1000]...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-adding 1000 surveyed names issued %d transport queries\n", m.Queries()-before)

	// Views are snapshots: v1 still answers from its own generation,
	// byte-identical to what it reported before the later Adds.
	fmt.Printf("\nv1 (gen %d) still sees %d names; At() (gen %d) sees %d\n",
		v1.Generation(), len(v1.Names()), m.At().Generation(), len(m.At().Names()))

	// The full read API hangs off every view; repeated analyses are
	// served from the per-chain memo.
	name := m.At().Names()[0]
	tcb, err := m.At().TCB(name)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.At().Bottleneck(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: TCB %d servers, min-cut %d (%d safe)\n", name, len(tcb), res.Size, res.SafeInCut)
	fmt.Println("\nfor the HTTP/JSON service over the same API, see cmd/dnsmonitord")
}
