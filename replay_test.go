package dnstrust

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"dnstrust/internal/resolver"
	"dnstrust/internal/transport"
)

// TestRecordReplayEquivalence is the acceptance proof for the offline
// crawl mode: a crawl over the direct source with a Record middleware,
// then a crawl of the same corpus served entirely from that recording —
// through a Save/Load round trip, in strict replay — must complete with
// zero transport queries to any terminal source beyond the log and
// produce an identical Summary, identical per-name TCBs, and identical
// min-cut bottlenecks.
func TestRecordReplayEquivalence(t *testing.T) {
	ctx := context.Background()
	log := transport.NewLog()
	opts := Options{Seed: 31, Names: 400, Workers: 4, RecordLog: log}

	world, err := NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := OpenWorld(ctx, world, opts)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := m1.Add(ctx, world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("recording crawl captured nothing")
	}

	// Round-trip the recording through its file format, as dnssurvey
	// -record / -replay would.
	var file bytes.Buffer
	saved, err := log.Save(&file)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := transport.NewLog()
	if n, err := reloaded.Load(bytes.NewReader(file.Bytes())); err != nil || n != saved {
		t.Fatalf("log round trip: loaded %d of %d records, err=%v", n, saved, err)
	}

	// Strict replay: the log is the only Internet. Completing at all
	// proves no other source was touched; the counter on the unused
	// direct terminal in the fallthrough variant below proves it again
	// explicitly.
	world2, err := NewWorld(Options{Seed: 31, Names: 400})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := OpenWorld(ctx, world2, Options{Workers: 4, ReplayLog: reloaded})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	v2, err := m2.Add(ctx, world2.Corpus...)
	if err != nil {
		t.Fatal(err)
	}

	// Identical Summary.
	s1, s2 := v1.Summary(), v2.Summary()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("replayed summary differs:\nrecorded %+v\nreplayed %+v", s1, s2)
	}
	if len(v2.Names()) != len(world.Corpus) {
		t.Fatalf("replay surveyed %d of %d names (failed: %d)",
			len(v2.Names()), len(world.Corpus), len(v2.Survey().Failed))
	}

	// Identical per-name TCBs and min-cut bottlenecks.
	for i, n := range v1.Names() {
		t1, err1 := v1.TCB(n)
		t2, err2 := v2.TCB(n)
		if err1 != nil || err2 != nil {
			t.Fatalf("TCB(%s): %v / %v", n, err1, err2)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("TCB(%s) differs between recorded and replayed crawl", n)
		}
		if i%25 != 0 {
			continue // min-cuts on a sample; they are the expensive part
		}
		c1, err1 := v1.Bottleneck(n)
		c2, err2 := v2.Bottleneck(n)
		if err1 != nil || err2 != nil {
			t.Fatalf("Bottleneck(%s): %v / %v", n, err1, err2)
		}
		if c1.Size != c2.Size || c1.SafeInCut != c2.SafeInCut || c1.VulnInCut != c2.VulnInCut {
			t.Fatalf("Bottleneck(%s) differs: size %d/%d safe %d/%d",
				n, c1.Size, c2.Size, c1.SafeInCut, c2.SafeInCut)
		}
	}

	// Fallthrough replay over a counted terminal: zero misses, zero
	// queries to the terminal source.
	counter := transport.NewCounter()
	world3, err := NewWorld(Options{Seed: 31, Names: 400})
	if err != nil {
		t.Fatal(err)
	}
	ft := transport.ReplayThrough(reloaded, transport.Chain(world3.Registry.Source(), counter.Middleware()))
	m3, err := OpenWorld(ctx, world3, Options{Workers: 4, Source: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	v3, err := m3.Add(ctx, world3.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter.Queries(); got != 0 {
		t.Errorf("fallthrough replay sent %d queries to the terminal source, want 0", got)
	}
	if got := ft.Misses(); got != 0 {
		t.Errorf("fallthrough replay reported %d log misses, want 0", got)
	}
	if !reflect.DeepEqual(v3.Summary(), s1) {
		t.Error("fallthrough-replayed summary differs from the recorded crawl")
	}
}

// TestRecordingByteStable: two parallel recorded crawls of the same
// corpus must save byte-identical query logs — INET records are
// server-agnostic (which server answers a logical query is schedule
// noise) and CHAOS probes hit a fixed per-host address set, so nothing
// schedule-dependent reaches the file. This is the diffability
// guarantee longitudinal comparisons rest on.
func TestRecordingByteStable(t *testing.T) {
	ctx := context.Background()
	recordOnce := func() []byte {
		log := transport.NewLog()
		m, err := Open(ctx, Options{Seed: 37, Names: 250, Workers: 8, RecordLog: log})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Add(ctx, m.World().Corpus...); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := log.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	b1, b2 := recordOnce(), recordOnce()
	if len(b1) == 0 {
		t.Fatal("empty recording")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("two recordings of the same corpus serialized different bytes")
	}
}

// TestFaultInjectionDrivesRetryPaths drives the walker's failure
// handling through the Fault middleware: with a seeded probability of
// injected timeouts and a retry budget of one server per logical query,
// a crawl must complete (no engine error), fail some walks through the
// ErrRetryBudget / ErrLameDelegation paths, and — because fault
// decisions are a pure hash of (seed, server, name, qtype) — fail
// exactly the same names with exactly the same errors on a rerun.
func TestFaultInjectionDrivesRetryPaths(t *testing.T) {
	ctx := context.Background()
	world, err := NewWorld(Options{Seed: 11, Names: 250})
	if err != nil {
		t.Fatal(err)
	}
	model := transport.FaultModel{Seed: 99, Timeout: 0.25, ServFail: 0.1}

	crawlOnce := func() (map[string]error, int) {
		src := transport.Chain(world.Registry.Source(), transport.Fault(model))
		r, err := resolver.New(src, resolver.Config{
			Roots:       world.Registry.RootServers(),
			RetryBudget: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		w := resolver.NewWalker(r)
		failed := map[string]error{}
		ok := 0
		for _, n := range world.Corpus {
			if _, err := w.WalkName(ctx, n); err != nil {
				failed[n] = err
			} else {
				ok++
			}
		}
		return failed, ok
	}

	failed1, ok1 := crawlOnce()
	if len(failed1) == 0 {
		t.Fatal("Timeout=0.25 with RetryBudget=1 failed no walks; fault injection is not reaching the retry paths")
	}
	if ok1 == 0 {
		t.Fatal("every walk failed; the fault model should leave survivors")
	}

	budgetHits, lameHits := 0, 0
	for _, err := range failed1 {
		if errors.Is(err, resolver.ErrRetryBudget) {
			budgetHits++
		}
		if errors.Is(err, resolver.ErrLameDelegation) {
			lameHits++
		}
	}
	if budgetHits == 0 {
		t.Error("no failure went through the ErrRetryBudget path")
	}
	if lameHits == 0 {
		t.Error("no failure went through the ErrLameDelegation path")
	}

	// Same seed, same serial schedule: byte-identical failure set.
	failed2, ok2 := crawlOnce()
	if ok1 != ok2 || len(failed1) != len(failed2) {
		t.Fatalf("fault runs diverged: %d/%d ok, %d/%d failed", ok1, ok2, len(failed1), len(failed2))
	}
	for n, e1 := range failed1 {
		e2, ok := failed2[n]
		if !ok {
			t.Fatalf("name %s failed only in the first run", n)
		}
		if e1.Error() != e2.Error() {
			t.Fatalf("failure for %s differs:\n%v\nvs\n%v", n, e1, e2)
		}
	}

	// A different fault seed injects a different universe.
	other := transport.Chain(world.Registry.Source(), transport.Fault(transport.FaultModel{Seed: 100, Timeout: 0.25, ServFail: 0.1}))
	r2, err := resolver.New(other, resolver.Config{Roots: world.Registry.RootServers(), RetryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	w2 := resolver.NewWalker(r2)
	diverged := false
	for _, n := range world.Corpus {
		_, err := w2.WalkName(ctx, n)
		if (err != nil) != (failed1[n] != nil) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("fault seeds 99 and 100 produced identical outcomes across the whole corpus")
	}
}
