// Benchmarks regenerating every table and figure of the paper, plus the
// ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benches measure the analysis that produces each figure's series
// over a shared survey (world generation and crawling are amortized into
// one-time setup); the Survey* benches measure the crawl itself.
package dnstrust

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnstrust/internal/analysis"
	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/delta"
	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/mincut"
	"dnstrust/internal/proxy"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
	"dnstrust/internal/verdict"
)

// benchScale is the default corpus size for benchmark studies. Override
// the full paper scale by running cmd/dnssurvey -names 593160.
const benchScale = 6000

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error
)

func sharedBenchStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = NewStudy(context.Background(), Options{Seed: 1, Names: benchScale})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

func benchExperiment(b *testing.B, id string) {
	s := sharedBenchStudy(b)
	var exp Experiment
	for _, e := range Experiments() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.Run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Run(context.Background(), s.View(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rows {
			if !c.Holds {
				b.Fatalf("%s / %s does not hold: %s vs %s", c.Experiment, c.Quantity, c.Paper, c.Measured)
			}
		}
	}
}

func BenchmarkFigure1DelegationGraph(b *testing.B) { benchExperiment(b, "Figure 1") }
func BenchmarkFigure2TCBSizeCDF(b *testing.B)      { benchExperiment(b, "Figure 2") }
func BenchmarkFigure3GTLDTCB(b *testing.B)         { benchExperiment(b, "Figure 3") }
func BenchmarkFigure4CCTLDTCB(b *testing.B)        { benchExperiment(b, "Figure 4") }
func BenchmarkFigure5VulnerableInTCB(b *testing.B) { benchExperiment(b, "Figure 5") }
func BenchmarkFigure6TCBSafety(b *testing.B)       { benchExperiment(b, "Figure 6") }
func BenchmarkFigure7Bottlenecks(b *testing.B)     { benchExperiment(b, "Figure 7") }
func BenchmarkFigure8NamesControlled(b *testing.B) { benchExperiment(b, "Figure 8") }
func BenchmarkFigure9EduOrgControl(b *testing.B)   { benchExperiment(b, "Figure 9") }
func BenchmarkTableATCBSummary(b *testing.B)       { benchExperiment(b, "T-A") }
func BenchmarkTableBPoisoning(b *testing.B)        { benchExperiment(b, "T-B") }
func BenchmarkTableCFBIHijack(b *testing.B)        { benchExperiment(b, "T-C") }
func BenchmarkTableDUkraineWorstCase(b *testing.B) { benchExperiment(b, "T-D") }

// BenchmarkSurveyCrawl measures the full crawl pipeline (walk + probe)
// at a small scale per iteration.
func BenchmarkSurveyCrawl(b *testing.B) {
	world, err := topology.Generate(topology.GenParams{Seed: 3, Names: 500})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := world.Registry.Source()
		r, err := world.Registry.Resolver(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := crawler.Run(context.Background(), r, world.Corpus,
			world.Registry.ProbeFunc(tr), crawler.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurveyCrawlWorkers measures how crawl throughput scales with
// the worker pool over one fixed world. Queries run over a simulated
// 200µs round-trip (real surveys are network-bound; the paper's crawl
// was dominated by RTTs), so scaling comes from workers overlapping
// round-trips — which the sharded, single-flight engine must allow
// without duplicating transport work. Throughput should improve
// monotonically from 1 to 8 workers (≥2× at 8).
func BenchmarkSurveyCrawlWorkers(b *testing.B) {
	world, err := topology.Generate(topology.GenParams{Seed: 5, Names: 2000})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := transport.Chain(world.Registry.Source(),
					transport.Latency(transport.FixedRTT(200*time.Microsecond)))
				r, err := world.Registry.Resolver(tr)
				if err != nil {
					b.Fatal(err)
				}
				s, err := crawler.Run(context.Background(), r, world.Corpus, nil,
					crawler.Config{Workers: workers, SkipVersionProbe: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Names) != len(world.Corpus) {
					b.Fatalf("walked %d of %d names", len(s.Names), len(world.Corpus))
				}
			}
			b.ReportMetric(float64(len(world.Corpus))*float64(b.N)/b.Elapsed().Seconds(), "names/s")
		})
	}
}

// BenchmarkReplayCrawl measures the offline crawl mode: a survey served
// entirely from a recorded query log through the wire codec — the
// throughput of re-running an analysis over a snapshot of the past.
func BenchmarkReplayCrawl(b *testing.B) {
	world, err := topology.Generate(topology.GenParams{Seed: 3, Names: 500})
	if err != nil {
		b.Fatal(err)
	}
	log := transport.NewLog()
	rec := transport.Chain(world.Registry.Source(), transport.Record(log))
	r, err := world.Registry.Resolver(rec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := crawler.Run(context.Background(), r, world.Corpus,
		world.Registry.ProbeFunc(rec), crawler.Config{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay := transport.Replay(log)
		rp, err := world.Registry.Resolver(replay)
		if err != nil {
			b.Fatal(err)
		}
		s, err := crawler.Run(context.Background(), rp, world.Corpus,
			world.Registry.ProbeFunc(replay), crawler.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Names) != len(world.Corpus) {
			b.Fatalf("replayed %d of %d names", len(s.Names), len(world.Corpus))
		}
	}
	b.ReportMetric(float64(len(world.Corpus))*float64(b.N)/b.Elapsed().Seconds(), "names/s")
}

// BenchmarkWalkerContention isolates the walker's read path: every
// goroutine re-walks names whose chains are fully cached, so the
// benchmark measures pure contention on the discovery state (the old
// engine's single RWMutex versus the sharded caches) with no transport
// work.
func BenchmarkWalkerContention(b *testing.B) {
	world, err := topology.Generate(topology.GenParams{Seed: 5, Names: 400})
	if err != nil {
		b.Fatal(err)
	}
	r, err := world.Registry.Resolver(nil)
	if err != nil {
		b.Fatal(err)
	}
	w := resolver.NewWalker(r)
	ctx := context.Background()
	for _, n := range world.Corpus {
		if _, err := w.WalkName(ctx, n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	// b.Fatal must not be called from RunParallel workers; collect the
	// first error and fail on the benchmark goroutine.
	var walkErr atomic.Pointer[error]
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := world.Corpus[i%len(world.Corpus)]
			i++
			if _, err := w.WalkName(ctx, name); err != nil {
				walkErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	if errp := walkErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
}

// BenchmarkAblationTransportDirect vs ...Wire quantify the cost of full
// wire-format framing on every query (the codec is exercised either way
// by the network tests; this isolates pack/unpack overhead).
func BenchmarkAblationTransportDirect(b *testing.B) { benchTransport(b, false) }
func BenchmarkAblationTransportWire(b *testing.B)   { benchTransport(b, true) }

func benchTransport(b *testing.B, wire bool) {
	world, err := topology.Generate(topology.GenParams{Seed: 3, Names: 400})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := world.Registry.Source()
		if wire {
			tr = transport.Chain(tr, transport.WireFramed())
		}
		r, err := world.Registry.Resolver(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := crawler.Run(context.Background(), r, world.Corpus, nil,
			crawler.Config{SkipVersionProbe: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClosureSCC measures the shared-closure computation
// (SCC condensation; one pass prices every zone) against the naive
// per-name alternative measured by BenchmarkAblationClosureNaive.
func BenchmarkAblationClosureSCC(b *testing.B) {
	s := sharedBenchStudy(b)
	snap := s.Survey.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := rebuildGraph(snap)
		// Touch every name's TCB so lazy costs are comparable.
		var total int
		for _, n := range s.Survey.Names {
			total += g.TCBSize(n)
		}
		if total == 0 {
			b.Fatal("empty TCBs")
		}
	}
}

// BenchmarkAblationClosureNaive walks each name's dependencies from
// scratch (per-name BFS over zones) instead of sharing zone closures.
func BenchmarkAblationClosureNaive(b *testing.B) {
	s := sharedBenchStudy(b)
	snap := s.Survey.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int
		for _, n := range s.Survey.Names {
			total += naiveTCBSize(snap, n)
		}
		if total == 0 {
			b.Fatal("empty TCBs")
		}
	}
}

// naiveTCBSize recomputes one name's TCB by BFS over the snapshot,
// without any cross-name sharing — the ablation baseline.
func naiveTCBSize(snap *resolver.Snapshot, name string) int {
	servers := map[string]bool{}
	seenZone := map[string]bool{}
	var stack []string
	stack = append(stack, snap.NameChain[name]...)
	for len(stack) > 0 {
		apex := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenZone[apex] {
			continue
		}
		seenZone[apex] = true
		zi := snap.Zones[apex]
		if zi == nil {
			continue
		}
		for _, h := range zi.NSHosts {
			servers[h] = true
			stack = append(stack, snap.HostChain[h]...)
		}
	}
	return len(servers)
}

func rebuildGraph(snap *resolver.Snapshot) graphLike {
	return crawler.FromSnapshot(snap).Graph
}

type graphLike interface {
	TCBSize(name string) int
}

// BenchmarkMillionNameBuild measures incremental graph construction at
// survey scale: a synthetic corpus streams through the core.Builder
// event API (zones, chains, completions in causal order) and Finish runs
// the closure pass. The 100k and 1M sub-benchmarks bracket the scaling
// claim: with no end-of-crawl string buffer, bytes/op must grow
// linearly in the name count with a small per-name constant (the name
// string and its chain-id map entry), not with per-name chain slices —
// compare B/op÷names across the two scales.
func BenchmarkMillionNameBuild(b *testing.B) {
	for _, scale := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("names=%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			var finishNs float64
			for i := 0; i < b.N; i++ {
				g, finish := core.SyntheticBuild(scale)
				finishNs += float64(finish.Nanoseconds())
				if g.NumHosts() == 0 || g.NumNames() != scale {
					b.Fatalf("built %d names, %d hosts", g.NumNames(), g.NumHosts())
				}
			}
			b.ReportMetric(float64(scale)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
			b.ReportMetric(finishNs/float64(b.N)/1e6, "finish-ms/op")
		})
	}
}

// BenchmarkMonitorIncrementalAdd compares delivering a million-name
// corpus in ten incremental epochs (the Monitor's Add path: feed a
// batch, finalize an epoch snapshot, repeat) against one batch build
// with a single terminal Finish. The incremental path pays ten closure
// passes plus the per-epoch snapshot clones — the price of having a
// queryable, immutable view after every batch instead of only at the
// end.
func BenchmarkMonitorIncrementalAdd(b *testing.B) {
	const total = 1_000_000
	const batches = 10
	b.Run("batch=1x1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, _ := core.SyntheticBuild(total)
			if g.NumNames() != total {
				b.Fatalf("built %d names", g.NumNames())
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
	})
	b.Run("adds=10x100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bu := core.NewBuilder(total)
			var g *core.Graph
			for lo := 0; lo < total; lo += total / batches {
				core.FeedSyntheticRange(bu, lo, lo+total/batches, total)
				g = bu.FinishEpoch()
			}
			if g.NumNames() != total {
				b.Fatalf("built %d names", g.NumNames())
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
	})
}

// BenchmarkViewQueryThroughput measures the Monitor's read side:
// parallel TCB and Bottleneck queries against committed views while an
// Add crawls the second half of the corpus. Reads never block on the
// crawl — the whole point of the epoch-snapshot design — so throughput
// should match a quiescent monitor's.
func BenchmarkViewQueryThroughput(b *testing.B) {
	world, err := topology.Generate(topology.GenParams{Seed: 5, Names: 2000})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	m, err := OpenWorld(ctx, world, Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	half := len(world.Corpus) / 2
	if _, err := m.Add(ctx, world.Corpus[:half]...); err != nil {
		b.Fatal(err)
	}
	names := m.At().Names()

	// Keep a crawl in flight for (at least the start of) the measured
	// window; the bench is still valid after it completes.
	addDone := make(chan error, 1)
	go func() { _, err := m.Add(ctx, world.Corpus[half:]...); addDone <- err }()

	b.ReportAllocs()
	b.ResetTimer()
	var readErr atomic.Pointer[error]
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v := m.At()
			name := names[i%len(names)]
			i++
			if _, err := v.TCB(name); err != nil {
				readErr.CompareAndSwap(nil, &err)
				return
			}
			if _, err := v.Bottleneck(name); err != nil {
				readErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := readErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	if err := <-addDone; err != nil {
		b.Fatal(err)
	}
}

// memoBenchStudy is the 100k-name study behind
// BenchmarkChainMemoSecondPass — its own scale (the acceptance claim is
// stated at 100k names), built once per test binary.
var (
	memoBenchOnce  sync.Once
	memoBenchS     *Study
	memoBenchErr   error
	memoBenchScale = 100_000
)

func sharedMemoBenchStudy(b *testing.B) *Study {
	b.Helper()
	memoBenchOnce.Do(func() {
		memoBenchS, memoBenchErr = NewStudy(context.Background(), Options{Seed: 3, Names: memoBenchScale})
	})
	if memoBenchErr != nil {
		b.Fatal(memoBenchErr)
	}
	return memoBenchS
}

// BenchmarkChainMemoSecondPass backs the memoization claim: on a real
// 100k-name survey (~70k distinct delegation chains), a second
// Summary+Bottlenecks pass through a warm chain memo must be at least
// an order of magnitude faster than the first — the warm pass skips
// every max-flow and per-chain TCB scan, leaving only the per-name
// aggregation. Compare the first/second sub-benchmark ns/op.
func BenchmarkChainMemoSecondPass(b *testing.B) {
	s := sharedMemoBenchStudy(b)
	sv := s.Survey
	ctx := context.Background()
	pass := func(b *testing.B, memo *analysis.ChainMemo) {
		if _, err := analysis.BottlenecksMemo(ctx, sv, sv.Names, 0, memo); err != nil {
			b.Fatal(err)
		}
		if sum := analysis.SummarizeMemo(sv, sv.Names, memo); sum.Names != len(sv.Names) {
			b.Fatalf("summary covered %d of %d names", sum.Names, len(sv.Names))
		}
	}
	b.Run("first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pass(b, analysis.NewChainMemo())
		}
	})
	warm := analysis.NewChainMemo()
	pass(b, warm)
	b.Run("second", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pass(b, warm)
		}
	})
}

// BenchmarkTimelineDiff backs the timeline's O(changed) claim: after a
// small Add on a 100k-name survey, diffing the two generations must
// cost proportional to what changed (the touched names and late-changed
// chains), not the corpus — identical chain ids short-circuit without
// being read. The measured op is the full typed Delta: name
// classification, TCB set diffs, and min-cuts for changed chains.
func BenchmarkTimelineDiff(b *testing.B) {
	const scale = 100_000
	const extra = 50
	bu := core.NewBuilder(scale + extra)
	core.FeedSyntheticRange(bu, 0, scale, scale+extra)
	older := crawler.FromGraph(bu.FinishEpoch())
	core.FeedSyntheticRange(bu, scale, scale+extra, scale+extra)
	newer := crawler.FromGraph(bu.FinishEpoch())

	b.Run(fmt.Sprintf("names=%d", scale), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := delta.Compute(context.Background(), older, newer, delta.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(d.NamesAdded) != extra {
				b.Fatalf("delta saw %d added names, want %d", len(d.NamesAdded), extra)
			}
		}
	})
}

// BenchmarkSnapshotColdStart backs the restart claim: reopening a
// monitored survey from a binary epoch-store snapshot versus rebuilding
// it by re-crawling from a recorded query log (the previous-best offline
// restart path). Both sub-benchmarks end at the same observable state —
// a live Monitor serving the committed generation — so their ns/op
// ratio is the restart speedup; at 100k names (cmd/dnsbench
// -snapshot-names, recorded in BENCH_6.json) the snapshot path must be
// ≥50x faster. The snapshot load issues zero transport queries.
func BenchmarkSnapshotColdStart(b *testing.B) {
	const scale = 6000
	world, err := topology.Generate(topology.GenParams{Seed: 7, Names: scale})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	qlog := transport.NewLog()
	snapPath := filepath.Join(b.TempDir(), "bench.snap")
	m, err := OpenWorld(ctx, world, Options{RecordLog: qlog, SnapshotFile: snapPath})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Add(ctx, world.Corpus...); err != nil {
		b.Fatal(err)
	}
	if err := m.Close(); err != nil { // saves the snapshot
		b.Fatal(err)
	}

	coldStart := func(b *testing.B, opts Options, crawl bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := OpenWorld(ctx, world, opts)
			if err != nil {
				b.Fatal(err)
			}
			if crawl {
				if _, err := m.Add(ctx, world.Corpus...); err != nil {
					b.Fatal(err)
				}
			} else if m.Queries() != 0 {
				b.Fatalf("snapshot cold start issued %d queries", m.Queries())
			}
			if got := m.At().NumNames(); got != len(world.Corpus) {
				b.Fatalf("cold start serves %d of %d names", got, len(world.Corpus))
			}
			b.StopTimer()
			m.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(scale)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
	}
	b.Run(fmt.Sprintf("snapshot/names=%d", scale), func(b *testing.B) {
		coldStart(b, Options{SnapshotFile: snapPath}, false)
	})
	b.Run(fmt.Sprintf("replay/names=%d", scale), func(b *testing.B) {
		coldStart(b, Options{ReplayLog: qlog}, true)
	})
}

// BenchmarkAblationMinCutDinic vs ...ANDORBound compare the paper's
// per-name digraph min-cut against the global AND/OR tree-cost fixpoint
// (an upper bound on the true minimum hijack, exact on trees).
func BenchmarkAblationMinCutDinic(b *testing.B) {
	s := sharedBenchStudy(b)
	names := s.Survey.Names
	if len(names) > 500 {
		names = names[:500]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := analysis.Bottlenecks(context.Background(), s.Survey, names, 0)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Names == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkAblationMinCutANDORBound(b *testing.B) {
	s := sharedBenchStudy(b)
	names := s.Survey.Names
	if len(names) > 500 {
		names = names[:500]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := analysis.ANDORHijackBound(s.Survey, names)
		if len(out) != len(names) {
			b.Fatal("missing results")
		}
	}
}

// BenchmarkMinCutSingle measures one per-name min-cut end to end.
func BenchmarkMinCutSingle(b *testing.B) {
	s := sharedBenchStudy(b)
	name := s.Survey.Names[0]
	vuln := func(h string) bool { return s.Survey.Vulnerable(h) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := s.Survey.Graph.Digraph(name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mincut.Analyze(d, vuln); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerdictLookup is the serving-path acceptance benchmark: the
// verdict cache must sustain >=100k lookups/s while a concurrent
// Add+commit loop churns generations underneath it — every commit runs
// the precise eviction pass, so the bench measures the hit path under
// real invalidation pressure, not a quiescent cache. Gated by
// cmd/benchdiff on ns/op and on the absolute lookups/s floor.
func BenchmarkVerdictLookup(b *testing.B) {
	const scale = 2000
	world, err := topology.Generate(topology.GenParams{Seed: 5, Names: scale})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	m, err := OpenWorld(ctx, world, Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{TTL: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	m.OnCommit(func(v *View) { cache.Advance(v.Survey()) })
	if _, err := m.Add(ctx, world.Corpus...); err != nil {
		b.Fatal(err)
	}
	names := m.At().Names()
	for _, n := range names {
		cache.Lookup(n)
	}

	// Prove the churn path commits before measuring: a re-add of existing
	// names must still commit a fresh generation for the bench to mean
	// anything.
	preGen := m.Generation()
	if _, err := m.Add(ctx, names[:25]...); err != nil {
		b.Fatal(err)
	}
	if m.Generation() == preGen {
		b.Fatal("re-add did not commit a generation; churn loop would be a no-op")
	}

	b.Run(fmt.Sprintf("names=%d", scale), func(b *testing.B) {
		// Generation churn for the whole measured window: re-adding a
		// rotating batch always commits, and each commit's journal marks
		// the batch's names changed, so the eviction pass has real work.
		// (Short calibration runs of b.N may see zero commits land; the
		// final timed run is seconds long and sees hundreds.)
		stop := make(chan struct{})
		type churnResult struct {
			commits uint64
			err     error
		}
		churned := make(chan churnResult, 1)
		go func() {
			var res churnResult
			defer func() { churned <- res }()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := (i * 25) % len(names)
				hi := lo + 25
				if hi > len(names) {
					hi = len(names)
				}
				if _, err := m.Add(ctx, names[lo:hi]...); err != nil {
					res.err = err
					return
				}
				res.commits++
				i++
			}
		}()

		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				v := cache.Lookup(names[i%len(names)])
				i++
				if v == nil {
					panic("nil verdict")
				}
			}
		})
		b.StopTimer()
		close(stop)
		res := <-churned
		if res.err != nil {
			b.Fatal(res.err)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		b.ReportMetric(float64(res.commits), "commits")
	})
}

// BenchmarkProxyServe measures the proxy handler end to end at the Go
// call level: verdict lookup plus a full iterative upstream resolution
// against the in-memory registry per query. Gated by cmd/benchdiff.
func BenchmarkProxyServe(b *testing.B) {
	const scale = 2000
	world, err := topology.Generate(topology.GenParams{Seed: 5, Names: scale})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	m, err := OpenWorld(ctx, world, Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{TTL: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	m.OnCommit(func(v *View) { cache.Advance(v.Survey()) })
	if _, err := m.Add(ctx, world.Corpus...); err != nil {
		b.Fatal(err)
	}
	names := m.At().Names()
	src := world.Registry.Source()
	defer src.Close()
	r, err := resolver.New(src, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		b.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{Resolver: r, Cache: cache})
	if err != nil {
		b.Fatal(err)
	}

	b.Run(fmt.Sprintf("names=%d", scale), func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := names[i%len(names)]
				i++
				resp := p.ServeDNS(ctx, dnswire.NewQuery(uint16(i), name, dnswire.TypeA, dnswire.ClassINET))
				if resp == nil || resp.RCode == dnswire.RCodeServFail {
					panic(fmt.Sprintf("proxy failed on %s: %v", name, resp))
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkProxyUDP measures the full serving stack over real loopback
// sockets: dnsserver frontend, verdict cache, iterative upstream
// resolution, one UDP round-trip per query. Informational (socket
// throughput varies too much across machines to gate).
func BenchmarkProxyUDP(b *testing.B) {
	const scale = 2000
	world, err := topology.Generate(topology.GenParams{Seed: 5, Names: scale})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	m, err := OpenWorld(ctx, world, Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{TTL: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	m.OnCommit(func(v *View) { cache.Advance(v.Survey()) })
	if _, err := m.Add(ctx, world.Corpus...); err != nil {
		b.Fatal(err)
	}
	names := m.At().Names()
	src := world.Registry.Source()
	defer src.Close()
	r, err := resolver.New(src, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		b.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{Resolver: r, Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := dnsserver.Start(ctx, "127.0.0.1:0", dnsserver.Config{Handler: p})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	b.ReportAllocs()
	b.ResetTimer()
	var queryErr atomic.Pointer[error]
	b.RunParallel(func(pb *testing.PB) {
		c := dnsclient.New(dnsclient.Config{Timeout: 5 * time.Second})
		i := 0
		for pb.Next() {
			name := names[i%len(names)]
			i++
			resp, err := c.Query(ctx, addr, name, dnswire.TypeA, dnswire.ClassINET)
			if err != nil {
				queryErr.CompareAndSwap(nil, &err)
				return
			}
			if resp.RCode == dnswire.RCodeServFail {
				err := fmt.Errorf("SERVFAIL for %s", name)
				queryErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := queryErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkHijackMonteCarlo measures attack-simulation trials.
func BenchmarkHijackMonteCarlo(b *testing.B) {
	s := sharedBenchStudy(b)
	name := s.Survey.Names[0]
	res, err := s.Bottleneck(name)
	if err != nil {
		b.Fatal(err)
	}
	atk, err := s.Attack(res.Cut, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frac, err := atk.MonteCarlo(name, 100, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if frac != 1 {
			b.Fatalf("min-cut compromise gave trial fraction %v", frac)
		}
	}
}
