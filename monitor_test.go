package dnstrust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func openTestMonitor(t *testing.T, opts Options) *Monitor {
	t.Helper()
	m, err := Open(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// viewFingerprint serializes everything a View reports about a name set
// into one byte slice, so snapshot isolation can be asserted literally:
// byte-identical before and after a concurrent or subsequent Add.
func viewFingerprint(t *testing.T, v *View, names []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "gen=%d names=%d\n", v.Generation(), len(v.Names()))
	sum := v.Summary()
	fmt.Fprintf(&buf, "summary names=%d servers=%d vuln=%d affected=%d tcbmean=%.4f\n",
		sum.Names, sum.Servers, sum.VulnerableServers, sum.AffectedNames, sum.TCB.Mean())
	for _, n := range names {
		tcb, err := v.TCB(n)
		if err != nil {
			t.Fatal(err)
		}
		dot, err := v.DOT(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Bottleneck(n)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s tcb=%v cut=%d safe=%d dot=%d\n", n, tcb, res.Size, res.SafeInCut, len(dot))
	}
	return buf.Bytes()
}

// TestMonitorGenerationZero checks that a freshly opened session is
// queryable before any crawl: generation 0 is an empty, valid view.
func TestMonitorGenerationZero(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 100})
	v := m.At()
	if v.Generation() != 0 || m.Generation() != 0 {
		t.Fatalf("fresh monitor at generation %d", v.Generation())
	}
	if len(v.Names()) != 0 {
		t.Fatalf("empty session has %d names", len(v.Names()))
	}
	sum := v.Summary()
	if sum.Names != 0 || sum.Servers != 0 || sum.TCB.Mean() != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
	if _, err := v.TCB("www.nowhere.example"); err == nil {
		t.Error("TCB on an empty view must error")
	}
	stats, err := v.Bottlenecks(context.Background())
	if err != nil || stats.Names != 0 {
		t.Errorf("empty bottlenecks = %+v, %v", stats, err)
	}
}

// TestMonitorAddMemoizedZeroQueries is the acceptance gate for query
// reuse: adding names to an open session issues zero transport queries
// for already-walked zones, asserted via the engine's query counter.
func TestMonitorAddMemoizedZeroQueries(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 300})
	ctx := context.Background()
	corpus := m.World().Corpus

	if _, err := m.Add(ctx, corpus...); err != nil {
		t.Fatal(err)
	}
	before := m.Queries()
	if before == 0 {
		t.Fatal("initial crawl issued no transport queries")
	}

	// Re-adding the whole corpus: every zone, chain, and address is
	// memoized — the transport must not be touched.
	v, err := m.Add(ctx, corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Queries() - before; got != 0 {
		t.Errorf("re-adding %d memoized names issued %d transport queries, want 0", len(corpus), got)
	}
	if v.Generation() != 2 {
		t.Errorf("generation = %d, want 2", v.Generation())
	}
	if len(v.Names()) != len(corpus) {
		t.Errorf("re-add changed the corpus: %d names", len(v.Names()))
	}
}

// TestMonitorViewSnapshotIsolation is the acceptance gate for snapshot
// isolation: a View taken before an Add returns byte-identical results
// after it.
func TestMonitorViewSnapshotIsolation(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 400})
	ctx := context.Background()
	corpus := m.World().Corpus
	half := len(corpus) / 2

	v1, err := m.Add(ctx, corpus[:half]...)
	if err != nil {
		t.Fatal(err)
	}
	probe := v1.Names()[:min(25, len(v1.Names()))]
	before := viewFingerprint(t, v1, probe)

	if _, err := m.Add(ctx, corpus[half:]...); err != nil {
		t.Fatal(err)
	}

	after := viewFingerprint(t, v1, probe)
	if !bytes.Equal(before, after) {
		t.Fatalf("view changed across an Add:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// And the new view actually moved.
	v2 := m.At()
	if v2.Generation() != 2 || len(v2.Names()) != len(corpus) {
		t.Errorf("At() = gen %d with %d names, want gen 2 with %d", v2.Generation(), len(v2.Names()), len(corpus))
	}
}

// TestMonitorConcurrentReadsDuringCrawl exercises the View contract
// under -race: many goroutines run the full read API — including lazy
// Snapshot reconstruction and memoized analyses — against a committed
// view while the next Add crawls.
func TestMonitorConcurrentReadsDuringCrawl(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 13, Names: 500, Workers: 4})
	ctx := context.Background()
	corpus := m.World().Corpus
	half := len(corpus) / 2

	v1, err := m.Add(ctx, corpus[:half]...)
	if err != nil {
		t.Fatal(err)
	}
	probe := v1.Names()[:min(10, len(v1.Names()))]
	want := viewFingerprint(t, v1, probe)

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := viewFingerprint(t, v1, probe); !bytes.Equal(got, want) {
					errs <- errors.New("view fingerprint changed during a concurrent Add")
					return
				}
				if snap := v1.Survey().Snapshot(); len(snap.NameChain) != len(v1.Names()) {
					errs <- errors.New("snapshot changed during a concurrent Add")
					return
				}
				if _, err := m.At().TCB(m.At().Names()[0]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	_, addErr := m.Add(ctx, corpus[half:]...)
	close(stop)
	wg.Wait()
	if addErr != nil {
		t.Fatal(addErr)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestMonitorViewAnalysesCached verifies the per-view once-caching and
// the cross-generation chain memo: repeated Summary and Bottlenecks on
// one view return the identical cached object, and a view committed by
// a no-new-zones Add reuses the memoized per-chain results.
func TestMonitorViewAnalysesCached(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 300})
	ctx := context.Background()
	v1, err := m.Add(ctx, m.World().Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Summary() != v1.Summary() {
		t.Error("Summary must be computed once per view")
	}
	b1, err := v1.Bottlenecks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b2, _ := v1.Bottlenecks(ctx); b2 != b1 {
		t.Error("Bottlenecks must be computed once per view")
	}

	// A second generation over the same chains: results must agree with
	// the first (served from the chain memo, not recomputed wrongly).
	v2, err := m.Add(ctx, m.World().Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := v2.Bottlenecks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Names != b1.Names || b2.FullyVulnerable != b1.FullyVulnerable || b2.OneSafe != b1.OneSafe {
		t.Errorf("memo-served bottlenecks differ across identical generations: %+v vs %+v", b2, b1)
	}
	if !reflect.DeepEqual(v2.Summary().TCB, v1.Summary().TCB) {
		t.Error("memo-served summary differs across identical generations")
	}
}

// cancelOnWriter cancels a context the first time the marker appears in
// the stream written through it — a deterministic way to cancel a
// RunAll mid-run at a chosen experiment boundary.
type cancelOnWriter struct {
	marker []byte
	cancel context.CancelFunc
	buf    bytes.Buffer
}

func (w *cancelOnWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	if bytes.Contains(w.buf.Bytes(), w.marker) {
		w.cancel()
	}
	return len(p), nil
}

// TestRunAllHonorsCancellation is the satellite contract: RunAll stops
// between experiments on a cancelled context, returning the rows of the
// experiments already finished and an error wrapping context.Canceled.
func TestRunAllHonorsCancellation(t *testing.T) {
	s := sharedStudy(t)

	// Cancelled before the first experiment: wrapped cancellation, no rows.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	rows, err := RunAll(pre, s.View(), &bytes.Buffer{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll on a dead context = %v, want wrapped context.Canceled", err)
	}
	if len(rows) != 0 {
		t.Errorf("dead-context RunAll returned %d rows", len(rows))
	}

	// Cancelled mid-run: the writer cancels when Figure 2's header goes
	// out. Figure 2 itself ignores ctx and completes, so RunAll trips on
	// the boundary check before Figure 3 and must return Figures 1-2's
	// rows with the wrapped cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelOnWriter{marker: []byte("===== Figure 2"), cancel: cancel}
	rows, err = RunAll(ctx, s.View(), w)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run RunAll = %v, want wrapped context.Canceled", err)
	}
	if len(rows) == 0 {
		t.Fatal("mid-run cancellation must return the partial comparisons")
	}
	for _, c := range rows {
		if c.Experiment != "Figure 1" && c.Experiment != "Figure 2" {
			t.Errorf("experiment %q ran after cancellation", c.Experiment)
		}
	}
}

func TestMonitorOnCommit(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 11, Names: 120, Workers: 4})
	ctx := context.Background()

	var mu sync.Mutex
	var gens []int64
	m.OnCommit(func(v *View) {
		mu.Lock()
		gens = append(gens, v.Generation())
		mu.Unlock()
	})
	// Hooks see the commit before Add returns, in order, once each.
	corpus := m.World().Corpus
	half := len(corpus) / 2
	v1, err := m.Add(ctx, corpus[:half]...)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Add(ctx, corpus[half:]...)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]int64(nil), gens...)
	mu.Unlock()
	if len(got) != 2 || got[0] != v1.Generation() || got[1] != v2.Generation() {
		t.Fatalf("hook saw generations %v, want [%d %d]", got, v1.Generation(), v2.Generation())
	}

	// An empty Add commits nothing and fires no hook.
	if _, err := m.Add(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(gens)
	mu.Unlock()
	if n != 2 {
		t.Errorf("empty Add fired a hook (%d commits recorded)", n)
	}
}
