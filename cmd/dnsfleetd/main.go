// Command dnsfleetd fronts a shared-nothing fleet of dnsmonitord
// shards as one logical survey. Each shard crawls its own partition of
// the corpus against its own store; dnsfleetd periodically pulls every
// shard's snapshot (a conditional fetch — an unchanged shard costs one
// request and zero bytes), remaps the shard-local zone/host/chain ids
// into a unioned intern space, and serves the merged view through the
// same read API a single monitor exposes.
//
// Usage:
//
//	dnsfleetd -shards s0=http://h0:8053,s1=http://h1:8053,s2=http://h2:8053
//	          [-addr :8063] [-interval 30s] [-timeout 10s] [-quorum 0]
//	          [-attempts 3] [-backoff 200ms] [-retain 8] [-snapshot fleet.snap]
//
// Endpoints:
//
//	GET  /summary            headline statistics of the merged generation
//	GET  /tcb?name=N         trusted computing base of a surveyed name
//	GET  /bottleneck?name=N  §3.2 min-cut analysis of a name
//	GET  /generations        retained merged generations (-retain bounds it)
//	GET  /diff?from=&to=     typed trust delta between two retained
//	                         merged generations
//	GET  /stats              fleet dimensions plus per-shard health
//	POST /add                whitespace-separated names in the body are
//	                         consistent-hashed to their owning shards,
//	                         fanned out to the shards' /add endpoints,
//	                         and folded into a fresh merged generation
//
// Merge semantics: shards are fetched concurrently each round, bounded
// by -timeout. A shard that fails its fetch keeps its last merged
// contribution and the view is marked stale; if fewer than -quorum
// shards answer (0 = majority), the round aborts and the previous view
// keeps serving. A round in which no shard changed reuses the current
// generation. -snapshot persists the merged union snapshot (atomic
// rename) after every new generation.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dnstrust/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8063", "HTTP listen address")
	shardsFlag := flag.String("shards", "", "comma-separated name=url shard list (url is a dnsmonitord base, e.g. s0=http://host:8053)")
	interval := flag.Duration("interval", 30*time.Second, "merge round period")
	timeout := flag.Duration("timeout", 10*time.Second, "per-round deadline: a dead shard costs at most this long")
	quorum := flag.Int("quorum", 0, "shards that must answer for a round to commit (0 = majority)")
	attempts := flag.Int("attempts", 3, "per-shard fetch attempts per round")
	backoff := flag.Duration("backoff", 200*time.Millisecond, "first retry delay, doubling per attempt")
	retain := flag.Int("retain", 8, "merged generations kept live for /generations and /diff")
	snapFile := flag.String("snapshot", "", "persist the merged snapshot here after every new generation")
	flag.Parse()

	urls := map[string]string{}
	var shards []fleet.Shard
	for _, part := range strings.Split(*shardsFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			log.Fatalf("dnsfleetd: bad -shards entry %q (want name=url)", part)
		}
		url = strings.TrimRight(url, "/")
		urls[name] = url
		shards = append(shards, fleet.Shard{Name: name, Source: &fleet.HTTPSource{URL: url}})
	}
	if len(shards) == 0 {
		log.Fatal("dnsfleetd: no shards configured (use -shards s0=http://host:8053,...)")
	}

	c, err := fleet.New(shards, fleet.Config{
		Quorum:       *quorum,
		Timeout:      *timeout,
		Attempts:     *attempts,
		Backoff:      *backoff,
		Retain:       *retain,
		SnapshotFile: *snapFile,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("dnsfleetd: %v", err)
	}
	srv := &server{c: c, ring: fleet.NewRing(c.ShardNames(), 0), urls: urls}

	log.Printf("merging initial fleet state from %d shards...", len(shards))
	start := time.Now()
	fv, err := c.Commit(context.Background())
	if err != nil {
		log.Fatalf("dnsfleetd: initial merge: %v", err)
	}
	log.Printf("generation %d ready: %d names, %d nameservers across %d shards (%.1fs); serving on %s",
		fv.Generation(), fv.NumNames(), fv.Survey().Graph.NumHosts(), len(shards),
		time.Since(start).Seconds(), *addr)
	if fv.Stale() {
		log.Printf("dnsfleetd: serving a partial view: stale shards %v", fv.StaleShards())
	}

	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := c.Commit(context.Background()); err != nil {
					log.Printf("dnsfleetd: merge round failed (previous generation still serving): %v", err)
				}
			}
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigc
		log.Printf("%v: shutting down", sig)
		close(stop)
		os.Exit(0)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /summary", srv.summary)
	mux.HandleFunc("GET /tcb", srv.tcb)
	mux.HandleFunc("GET /bottleneck", srv.bottleneck)
	mux.HandleFunc("GET /generations", srv.generations)
	mux.HandleFunc("GET /diff", srv.diff)
	mux.HandleFunc("GET /stats", srv.stats)
	mux.HandleFunc("POST /add", srv.add)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// server exposes one shared Coordinator. Reads answer from the latest
// merged FleetView (immutable, never blocking behind a merge round);
// /add fans out to the owning shards and then re-merges.
type server struct {
	c    *fleet.Coordinator
	ring *fleet.Ring
	urls map[string]string // shard name -> base URL, for /add fan-out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// view fetches the current merged view or fails the request (the
// coordinator has one from boot; nil only happens before the initial
// merge finishes).
func (s *server) view(w http.ResponseWriter) (*fleet.FleetView, bool) {
	v := s.c.Current()
	if v == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("no merged generation yet"))
		return nil, false
	}
	return v, true
}

func (s *server) summary(w http.ResponseWriter, r *http.Request) {
	v, ok := s.view(w)
	if !ok {
		return
	}
	sum := v.Summary()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":         v.Generation(),
		"names":              sum.Names,
		"servers":            sum.Servers,
		"vulnerable_servers": sum.VulnerableServers,
		"affected_names":     sum.AffectedNames,
		"tcb_mean":           sum.TCB.Mean(),
		"tcb_median":         sum.TCB.Median(),
		"tcb_max":            sum.TCB.Max(),
		"direct_mean":        sum.DirectMean,
		"owned_mean":         sum.OwnedMean,
		"stale":              v.Stale(),
		"stale_shards":       v.StaleShards(),
	})
}

func (s *server) tcb(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?name= parameter"))
		return
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	tcb, err := v.TCB(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": v.Generation(),
		"name":       name,
		"shard":      s.ring.Owner(name),
		"tcb_size":   len(tcb),
		"tcb":        tcb,
	})
}

func (s *server) bottleneck(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?name= parameter"))
		return
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	res, err := v.Bottleneck(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":  v.Generation(),
		"name":        name,
		"shard":       s.ring.Owner(name),
		"cut":         res.Cut,
		"cut_size":    res.Size,
		"safe_in_cut": res.SafeInCut,
		"vuln_in_cut": res.VulnInCut,
	})
}

func (s *server) generations(w http.ResponseWriter, r *http.Request) {
	tl := s.c.Timeline()
	out := make([]map[string]any, 0, len(tl))
	for _, v := range tl {
		g := v.Survey().Graph
		out = append(out, map[string]any{
			"generation":   v.Generation(),
			"names":        v.NumNames(),
			"servers":      g.NumHosts(),
			"zones":        g.NumZones(),
			"chains":       g.NumChains(),
			"changed":      len(v.Changed()),
			"stale":        v.Stale(),
			"stale_shards": v.StaleShards(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"retained":    len(tl),
		"generations": out,
	})
}

// genParam parses an int64 query parameter, with a default when absent.
func genParam(r *http.Request, key string, def int64) (int64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad ?%s=%q: %w", key, raw, err)
	}
	return v, nil
}

func (s *server) diff(w http.ResponseWriter, r *http.Request) {
	tl := s.c.Timeline()
	if len(tl) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no generations retained"))
		return
	}
	from, err := genParam(r, "from", tl[0].Generation())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	to, err := genParam(r, "to", tl[len(tl)-1].Generation())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if from > to {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("from=%d exceeds to=%d", from, to))
		return
	}
	d, err := s.c.Between(r.Context(), from, to)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	v, ok := s.view(w)
	if !ok {
		return
	}
	g := v.Survey().Graph
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":   v.Generation(),
		"names":        v.NumNames(),
		"servers":      g.NumHosts(),
		"zones":        g.NumZones(),
		"chains":       g.NumChains(),
		"stale":        v.Stale(),
		"stale_shards": v.StaleShards(),
		"shards":       s.c.Status(),
	})
}

// addResult is one shard's answer to a /add fan-out.
type addResult struct {
	shard string
	names int
	err   error
}

// add consistent-hashes the posted names to their owning shards, fans
// the partitions out to the shards' /add endpoints concurrently, and
// re-merges. Names keep flowing to the shard that owns them, so a
// later fan-out of the same name is an incremental no-op on the shard.
func (s *server) add(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	names := strings.Fields(string(body))
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty body: send whitespace-separated names"))
		return
	}
	parts := s.ring.Assign(names)
	shardNames := s.ring.Shards()
	results := make(chan addResult, len(shardNames))
	launched := 0
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		launched++
		go func(shard string, part []string) {
			results <- addResult{shard: shard, names: len(part), err: postAdd(r.Context(), s.urls[shard], part)}
		}(shardNames[i], p)
	}
	perShard := make(map[string]any, launched)
	failed := 0
	for i := 0; i < launched; i++ {
		res := <-results
		if res.err != nil {
			failed++
			perShard[res.shard] = map[string]any{"names": res.names, "error": res.err.Error()}
			continue
		}
		perShard[res.shard] = map[string]any{"names": res.names}
	}

	fv, err := s.c.Commit(r.Context())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("re-merge failed (previous generation still serving): %w", err))
		return
	}
	status := http.StatusOK
	if failed > 0 {
		// Partial fan-out: the merged view reflects what the healthy
		// shards absorbed; the caller can retry the rest.
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{
		"generation":    fv.Generation(),
		"added":         len(names),
		"names_total":   fv.NumNames(),
		"shards":        perShard,
		"failed_shards": failed,
		"stale":         fv.Stale(),
		"stale_shards":  fv.StaleShards(),
	})
}

// postAdd forwards one shard's partition to its /add endpoint.
func postAdd(ctx context.Context, baseURL string, names []string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/add",
		strings.NewReader(strings.Join(names, "\n")))
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s/add: %s: %s", baseURL, resp.Status, strings.TrimSpace(string(snippet)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
