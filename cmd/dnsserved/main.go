// Command dnsserved boots a scenario world as real DNS servers on
// loopback sockets and keeps them running so external tools (dig,
// drill, other resolvers) can explore the synthetic Internet by hand.
//
// Usage:
//
//	dnsserved -world fbi
//	dig @127.0.0.1 -p <root port> www.fbi.gov A +norecurse
//
// Each nameserver of the world gets its own UDP+TCP listener; the
// printed table maps host names to socket addresses. Interrupt to stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dnstrust/internal/topology"
)

func main() {
	world := flag.String("world", "fbi", "world: figure1 | fbi | ukraine | gen")
	names := flag.Int("names", 500, "corpus size for -world gen")
	seed := flag.Int64("seed", 1, "seed for -world gen")
	flag.Parse()

	var reg *topology.Registry
	switch *world {
	case "figure1":
		reg = topology.Figure1World()
	case "fbi":
		reg = topology.FBIWorld()
	case "ukraine":
		reg = topology.UkraineWorld()
	case "gen":
		w, err := topology.Generate(topology.GenParams{Seed: *seed, Names: *names})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsserved: %v\n", err)
			os.Exit(1)
		}
		reg = w.Registry
	default:
		fmt.Fprintf(os.Stderr, "dnsserved: unknown world %q\n", *world)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	live, err := topology.StartLive(ctx, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsserved: %v\n", err)
		os.Exit(1)
	}
	defer live.Close()

	fmt.Printf("serving %d nameservers on loopback\n\n", live.NumServers())
	fmt.Printf("%-34s %-22s %s\n", "host", "address", "version.bind")
	for _, host := range reg.Servers() {
		si := reg.Server(host)
		banner := si.Banner
		if banner == "" {
			banner = "(hidden)"
		}
		fmt.Printf("%-34s %-22s %s\n", host, live.Addr(host), banner)
	}
	fmt.Printf("\nroot servers:")
	for _, rs := range reg.RootServers() {
		fmt.Printf(" %s=%s", rs.Host, live.Addr(rs.Host))
	}
	fmt.Println("\n\ninterrupt to stop")
	<-ctx.Done()
	fmt.Println("\nshutting down")
}
