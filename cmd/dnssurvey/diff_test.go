package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"dnstrust"
	"dnstrust/internal/transport"
)

// recordLog crawls the world once with recording on and saves the
// query log, returning its path.
func recordLog(t *testing.T, opts dnstrust.Options, dir, name string) string {
	t.Helper()
	lg := transport.NewLog()
	opts.RecordLog = lg
	world, err := dnstrust.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnstrust.OpenWorld(context.Background(), world, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(context.Background(), world.Corpus...); err != nil {
		m.Close()
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if _, err := lg.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunDiffEmptyGeneration pins the -diff behavior against an empty
// recording: the drift still exits 4, but the output names the empty
// side explicitly instead of presenting the entire other recording as
// ordinary churn.
func TestRunDiffEmptyGeneration(t *testing.T) {
	dir := t.TempDir()
	opts := dnstrust.Options{Seed: 5, Names: 40}
	full := recordLog(t, opts, dir, "full.qlog")
	empty := filepath.Join(dir, "empty.qlog")
	if _, err := transport.NewLog().SaveFile(empty); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name     string
		old, new string
	}{
		{"empty-new", full, empty},
		{"empty-old", empty, full},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := runDiff(context.Background(), tc.old, tc.new, opts, true, &stdout, &stderr)
			if code != 4 {
				t.Fatalf("exit code %d, want 4 (drift)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			out := stdout.String()
			if !strings.Contains(out, "empty generation: "+empty) {
				t.Fatalf("output does not name the empty recording:\n%s", out)
			}
			if !strings.Contains(out, "drift ") {
				t.Fatalf("output carries no drift report:\n%s", out)
			}
		})
	}
}

// TestRunDiffAgreement: the same recording on both sides agrees, exits
// 0, and emits no empty-generation warning.
func TestRunDiffAgreement(t *testing.T) {
	dir := t.TempDir()
	opts := dnstrust.Options{Seed: 5, Names: 40}
	full := recordLog(t, opts, dir, "full.qlog")

	var stdout, stderr bytes.Buffer
	code := runDiff(context.Background(), full, full, opts, true, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "no drift") {
		t.Fatalf("agreeing recordings reported drift:\n%s", out)
	}
	if strings.Contains(out, "empty generation") {
		t.Fatalf("spurious empty-generation warning:\n%s", out)
	}
}
