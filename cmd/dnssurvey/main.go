// Command dnssurvey runs the paper's full survey pipeline: generate the
// synthetic Internet, crawl the corpus, and regenerate every figure and
// table of the evaluation with paper-vs-measured comparisons.
//
// Usage:
//
//	dnssurvey [-names 20000] [-seed 1] [-workers 0] [-markdown] [-only "Figure 2"]
//	dnssurvey -follow [-names 20000] ...
//	dnssurvey -record crawl.qlog          # record the crawl's transport exchanges
//	dnssurvey -replay crawl.qlog          # re-run the survey offline from a recording
//	dnssurvey -live                       # crawl over real UDP/TCP loopback sockets
//	dnssurvey -diff old.qlog new.qlog     # drift study: diff two recordings offline
//	dnssurvey -snapshot-out session.snap  # save the surveyed epoch store as a snapshot
//
// With -diff the survey is not crawled at all: the two recorded query
// logs (crawls of the same corpus at different times — use the same
// -names/-seed they were recorded with) are replayed through strict
// offline sources and the typed trust delta between them is printed —
// names added and removed, per-name TCB hosts gained and lost, min-cut
// drift, zone NS churn, and zombie dependencies (hosts still trusted
// whose delegation vanished). The exit status is 4 when drift was found,
// 0 when the recordings agree.
//
// The paper's full scale is -names 593160 (budget several minutes and a
// few GiB of memory).
//
// Which Internet the survey crawls is a transport-source composition:
// the default is the in-memory synthetic world; -live boots every
// nameserver as a real DNS server on loopback and crawls over actual
// sockets; -record captures every transport exchange into a byte-stable
// query log; -replay serves the entire crawl (fingerprint probes
// included) from such a log — or from a -memo-file — touching no other
// transport, so the same analysis can run over recorded snapshots from
// different times. -record composes with both -live and -replay.
//
// With -follow the survey session stays open after the initial crawl:
// every line read from stdin is a whitespace-separated batch of names to
// add incrementally, and the delta each batch caused — new servers
// discovered, transport queries spent, headline-statistic drift — is
// printed after each commit. Adding names whose dependency structure is
// already walked costs zero transport queries.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dnstrust"
	"dnstrust/internal/report"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

func main() {
	names := flag.Int("names", 20000, "survey corpus size (paper: 593160)")
	seed := flag.Int64("seed", 1, "world generation seed")
	workers := flag.Int("workers", 0, "crawl parallelism (0 = GOMAXPROCS)")
	markdown := flag.Bool("markdown", false, "emit the comparison table as Markdown (for EXPERIMENTS.md)")
	memoFile := flag.String("memo-file", "", "persist the query memo here and resume from it on the next run")
	snapshotOut := flag.String("snapshot-out", "", "save the surveyed epoch store as a binary snapshot here after a successful crawl (a dnsmonitord -snapshot boot restores it in load time)")
	record := flag.String("record", "", "record every transport exchange into this query-log file")
	replay := flag.String("replay", "", "serve the crawl from this recorded query log (strict: unrecorded queries fail)")
	live := flag.Bool("live", false, "boot the world's nameservers on loopback and crawl over real UDP/TCP sockets")
	only := flag.String("only", "", "run a single experiment by ID (e.g. \"Figure 7\")")
	follow := flag.Bool("follow", false, "keep the session open: read name batches from stdin, add them incrementally, print deltas")
	diff := flag.Bool("diff", false, "diff two recorded query logs (two positional args) instead of crawling")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	stats := flag.Bool("stats", false, "print crawl-engine statistics (transport queries, dedup counters)")
	flag.Parse()

	ctx := context.Background()
	opts := dnstrust.Options{Seed: *seed, Names: *names, Workers: *workers, MemoFile: *memoFile}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dnssurvey: -diff needs two query-log files: dnssurvey -diff old.qlog new.qlog")
			os.Exit(2)
		}
		os.Exit(runDiff(ctx, flag.Arg(0), flag.Arg(1), opts, *quiet, os.Stdout, os.Stderr))
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcrawled %d/%d names", done, total)
		}
	}

	var recLog *dnstrust.QueryLog
	if *record != "" {
		recLog = transport.NewLog()
		opts.RecordLog = recLog
	}
	if *replay != "" {
		lg := transport.NewLog()
		n, err := lg.LoadFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "replaying %s: %d recorded questions\n", *replay, n)
		}
		opts.ReplayLog = lg
	}

	start := time.Now()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "generating world (seed %d, %d names) and crawling...\n", *seed, *names)
	}
	world, err := dnstrust.NewWorld(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
		os.Exit(1)
	}
	switch {
	case *live && *replay != "":
		// Strict replay never queries a terminal source; booting the
		// fleet would only create sockets destined to be closed.
		fmt.Fprintln(os.Stderr, "dnssurvey: -live ignored: strict -replay serves everything from the recording")
	case *live:
		lv, err := topology.StartLive(ctx, world.Registry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: starting live servers: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "booted %d real DNS servers on loopback\n", lv.NumServers())
		}
		// The session owns the source chain: closing the monitor closes
		// the live listeners.
		opts.Source = transport.From(lv)
	}
	m, err := dnstrust.OpenWorld(ctx, world, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
		os.Exit(1)
	}
	v, err := m.Add(ctx, m.World().Corpus...)
	if err != nil {
		m.Close()
		// Like the query memo, a partial recording survives an aborted
		// crawl: everything answered so far is worth keeping.
		saveRecording(recLog, *record, *quiet)
		fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
		os.Exit(1)
	}
	sv := v.Survey()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\rcrawl complete: %d names, %d nameservers, %d failures (%.1fs)\n",
			len(sv.Names), sv.Graph.NumHosts(), len(sv.Failed), time.Since(start).Seconds())
	}
	if *stats {
		printStats(sv)
	}

	if *follow {
		followLoop(ctx, m, *quiet, *stats)
		if err := m.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: warning: session teardown: %v\n", err)
		}
		saveRecording(recLog, *record, *quiet)
		saveSnapshot(m, *snapshotOut, *quiet)
		return
	}

	// One-shot mode: freeze the session (persisting the query memo) and
	// regenerate the paper.
	if err := m.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: warning: session teardown: %v\n", err)
	}
	saveRecording(recLog, *record, *quiet)
	saveSnapshot(m, *snapshotOut, *quiet)

	var rows []dnstrust.Comparison
	if *only != "" {
		found := false
		for _, e := range dnstrust.Experiments() {
			if e.ID == *only {
				found = true
				fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
				rows, err = e.Run(ctx, v, os.Stdout)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dnssurvey: %s: %v\n", e.ID, err)
					os.Exit(1)
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "dnssurvey: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		if err := report.ComparisonTable("\nPaper vs measured", rows).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rows, err = dnstrust.RunAll(ctx, v, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
			os.Exit(1)
		}
	}

	if *markdown {
		fmt.Println()
		fmt.Println(report.Markdown(rows))
	}

	bad := 0
	for _, c := range rows {
		if !c.Holds {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "dnssurvey: %d of %d shape claims did NOT hold\n", bad, len(rows))
		os.Exit(3)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "all %d shape claims hold (total %.1fs)\n", len(rows), time.Since(start).Seconds())
	}
}

// followLoop reads name batches from stdin and extends the survey
// incrementally, printing the delta each batch caused.
func followLoop(ctx context.Context, m *dnstrust.Monitor, quiet, stats bool) {
	if !quiet {
		fmt.Fprintln(os.Stderr, "follow mode: reading name batches from stdin (one whitespace-separated batch per line, EOF ends the session)")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		batch := strings.Fields(sc.Text())
		if len(batch) == 0 {
			continue
		}
		prev := m.At()
		prevSum := prev.Summary()
		prevQueries := m.Queries()
		start := time.Now()
		v, err := m.Add(ctx, batch...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: add failed: %v\n", err)
			continue
		}
		sum := v.Summary()
		sv := v.Survey()
		fmt.Printf("gen %d: +%d names (%d total), +%d servers, %d queries, %.2fs\n",
			v.Generation(),
			sum.Names-prevSum.Names, sum.Names,
			sum.Servers-prevSum.Servers,
			m.Queries()-prevQueries,
			time.Since(start).Seconds())
		fmt.Printf("        mean TCB %.1f -> %.1f; affected names %d -> %d\n",
			prevSum.TCB.Mean(), sum.TCB.Mean(), prevSum.AffectedNames, sum.AffectedNames)
		for _, n := range batch {
			if sz := sv.Graph.TCBSize(n); sz >= 0 {
				fmt.Printf("        %s: TCB %d\n", n, sz)
			} else if err, ok := sv.Failed[n]; ok {
				fmt.Printf("        %s: failed: %v\n", n, err)
			}
		}
		if stats {
			printStats(sv)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: stdin: %v\n", err)
	}
}

// runDiff is the -diff mode: replay two recordings of the same corpus
// through strict offline sources and print the typed trust delta on
// stdout. It returns the process exit code: 0 when the recordings
// agree, 4 when drift was found, 1 on load or replay failure.
func runDiff(ctx context.Context, oldPath, newPath string, opts dnstrust.Options, quiet bool, stdout, stderr io.Writer) int {
	load := func(path string) (*dnstrust.QueryLog, int, error) {
		lg := transport.NewLog()
		n, err := lg.LoadFile(path)
		if err != nil {
			return nil, 0, err
		}
		if !quiet {
			fmt.Fprintf(stderr, "loaded %s: %d recorded questions\n", path, n)
		}
		return lg, n, nil
	}
	oldLog, oldN, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "dnssurvey: %s: %v\n", oldPath, err)
		return 1
	}
	newLog, newN, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "dnssurvey: %s: %v\n", newPath, err)
		return 1
	}
	// An empty recording is almost always an operational mistake — a
	// crawl that never ran, a truncated copy — and diffing against it
	// reports the entire other recording as drift. Say so explicitly,
	// so the wholesale churn below cannot read as genuine movement.
	for _, side := range []struct {
		path string
		n    int
	}{{oldPath, oldN}, {newPath, newN}} {
		if side.n == 0 {
			fmt.Fprintf(stdout, "empty generation: %s holds no recorded questions; every surveyed name diffs against nothing\n", side.path)
		}
	}
	start := time.Now()
	d, err := dnstrust.DiffLogs(ctx, oldLog, newLog, opts)
	if err != nil {
		fmt.Fprintf(stderr, "dnssurvey: diff: %v\n", err)
		return 1
	}
	// The diff only covers names that resolved in at least one
	// recording; corpus entries missing from both (e.g. -names larger
	// than what the logs were recorded with) are invisible to it and
	// must not be reported as "agreeing".
	if d.Compared < opts.Names {
		fmt.Fprintf(stderr,
			"dnssurvey: warning: only %d of %d corpus names resolved in either recording — were the logs recorded with the same -names/-seed?\n",
			d.Compared, opts.Names)
	}
	if d.Empty() {
		fmt.Fprintf(stdout, "no drift: %s and %s agree on all %d surveyed names (%.1fs)\n",
			oldPath, newPath, d.Compared, time.Since(start).Seconds())
		return 0
	}

	fmt.Fprintf(stdout, "drift %s -> %s:\n", oldPath, newPath)
	if len(d.NamesAdded) > 0 {
		fmt.Fprintf(stdout, "  names added:   %d %s\n", len(d.NamesAdded), preview(d.NamesAdded))
	}
	if len(d.NamesRemoved) > 0 {
		fmt.Fprintf(stdout, "  names removed: %d %s\n", len(d.NamesRemoved), preview(d.NamesRemoved))
	}
	if len(d.ZonesAdded) > 0 || len(d.ZonesRemoved) > 0 {
		fmt.Fprintf(stdout, "  zones: +%d -%d\n", len(d.ZonesAdded), len(d.ZonesRemoved))
	}
	if d.ChainsAdded > 0 || d.ChainsRemoved > 0 {
		fmt.Fprintf(stdout, "  delegation chains: +%d -%d\n", d.ChainsAdded, d.ChainsRemoved)
	}
	for _, zc := range d.ZoneChanges {
		fmt.Fprintf(stdout, "  zone %s: NS +%v -%v\n", zc.Apex, zc.NSAdded, zc.NSRemoved)
	}
	for _, c := range d.Changed {
		fmt.Fprintf(stdout, "  %s: TCB %d -> %d (+%d/-%d hosts), min-cut %d -> %d (safe %d -> %d)%s\n",
			c.Name, c.OldTCB, c.NewTCB, len(c.TCBAdded), len(c.TCBRemoved),
			c.OldCut, c.NewCut, c.OldSafe, c.NewSafe, chainNote(c))
	}
	for _, z := range d.Zombies {
		fmt.Fprintf(stdout, "  ZOMBIE %s (%s): still in %d names' TCB", z.Host, z.Kind, z.Names)
		if len(z.Zones) > 0 {
			fmt.Fprintf(stdout, "; dropped by %v", z.Zones)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "%d names changed, %d zombies (%.1fs)\n", len(d.Changed), len(d.Zombies), time.Since(start).Seconds())
	return 4
}

func chainNote(c dnstrust.NameChange) string {
	if c.ChainChanged {
		return " [delegation chain re-routed]"
	}
	return ""
}

// preview renders the first few entries of a long name list.
func preview(names []string) string {
	const show = 3
	if len(names) <= show {
		return fmt.Sprintf("%v", names)
	}
	return fmt.Sprintf("%v...", names[:show])
}

// saveSnapshot persists the surveyed epoch store as a binary snapshot
// (-snapshot-out). A closed session can still be snapshotted: Close only
// ends the write side.
func saveSnapshot(m *dnstrust.Monitor, path string, quiet bool) {
	if path == "" {
		return
	}
	start := time.Now()
	n, err := m.SaveSnapshot(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: snapshot not saved: %v\n", err)
		return
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "snapshot: generation %d, %d bytes to %s (%.2fs)\n",
			m.Generation(), n, path, time.Since(start).Seconds())
	}
}

// saveRecording persists the session's query log, when one was kept.
func saveRecording(lg *dnstrust.QueryLog, path string, quiet bool) {
	if lg == nil {
		return
	}
	n, err := lg.SaveFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: recording not saved: %v\n", err)
		return
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "recorded %d questions to %s\n", n, path)
	}
}

func printStats(sv *dnstrust.Survey) {
	st := sv.Stats
	fmt.Fprintf(os.Stderr,
		"engine: gen %d, %d workers, %d transport queries, %d query-memo hits, %d shared walks, %d inline fallbacks\n",
		st.Generation, st.Workers, st.Walker.Queries, st.Walker.MemoHits, st.Walker.SharedWalks, st.Walker.InlineWalks)
	fmt.Fprintf(os.Stderr,
		"phases: walk+assemble %.2fs (streamed), closure build %.3fs; %d memo entries resumed, %d failures retried\n",
		st.WalkTime.Seconds(), st.BuildTime.Seconds(), st.MemoLoaded, st.FailuresRetried)
	if err := st.MemoSaveErr; err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: warning: session teardown: %v\n", err)
	}
}
