// Command dnssurvey runs the paper's full survey pipeline: generate the
// synthetic Internet, crawl the corpus, and regenerate every figure and
// table of the evaluation with paper-vs-measured comparisons.
//
// Usage:
//
//	dnssurvey [-names 20000] [-seed 1] [-workers 0] [-markdown] [-only "Figure 2"]
//	dnssurvey -follow [-names 20000] ...
//
// The paper's full scale is -names 593160 (budget several minutes and a
// few GiB of memory).
//
// With -follow the survey session stays open after the initial crawl:
// every line read from stdin is a whitespace-separated batch of names to
// add incrementally, and the delta each batch caused — new servers
// discovered, transport queries spent, headline-statistic drift — is
// printed after each commit. Adding names whose dependency structure is
// already walked costs zero transport queries.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dnstrust"
	"dnstrust/internal/report"
)

func main() {
	names := flag.Int("names", 20000, "survey corpus size (paper: 593160)")
	seed := flag.Int64("seed", 1, "world generation seed")
	workers := flag.Int("workers", 0, "crawl parallelism (0 = GOMAXPROCS)")
	markdown := flag.Bool("markdown", false, "emit the comparison table as Markdown (for EXPERIMENTS.md)")
	memoFile := flag.String("memo-file", "", "persist the query memo here and resume from it on the next run")
	only := flag.String("only", "", "run a single experiment by ID (e.g. \"Figure 7\")")
	follow := flag.Bool("follow", false, "keep the session open: read name batches from stdin, add them incrementally, print deltas")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	stats := flag.Bool("stats", false, "print crawl-engine statistics (transport queries, dedup counters)")
	flag.Parse()

	ctx := context.Background()
	opts := dnstrust.Options{Seed: *seed, Names: *names, Workers: *workers, MemoFile: *memoFile}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcrawled %d/%d names", done, total)
		}
	}

	start := time.Now()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "generating world (seed %d, %d names) and crawling...\n", *seed, *names)
	}
	m, err := dnstrust.Open(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
		os.Exit(1)
	}
	v, err := m.Add(ctx, m.World().Corpus...)
	if err != nil {
		m.Close()
		fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
		os.Exit(1)
	}
	sv := v.Survey()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\rcrawl complete: %d names, %d nameservers, %d failures (%.1fs)\n",
			len(sv.Names), sv.Graph.NumHosts(), len(sv.Failed), time.Since(start).Seconds())
	}
	if *stats {
		printStats(sv)
	}

	if *follow {
		followLoop(ctx, m, *quiet, *stats)
		if err := m.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: warning: query memo not saved: %v\n", err)
		}
		return
	}

	// One-shot mode: freeze the session (persisting the query memo) and
	// regenerate the paper.
	if err := m.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: warning: query memo not saved: %v\n", err)
	}

	var rows []dnstrust.Comparison
	if *only != "" {
		found := false
		for _, e := range dnstrust.Experiments() {
			if e.ID == *only {
				found = true
				fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
				rows, err = e.Run(ctx, v, os.Stdout)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dnssurvey: %s: %v\n", e.ID, err)
					os.Exit(1)
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "dnssurvey: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		if err := report.ComparisonTable("\nPaper vs measured", rows).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rows, err = dnstrust.RunAll(ctx, v, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
			os.Exit(1)
		}
	}

	if *markdown {
		fmt.Println()
		fmt.Println(report.Markdown(rows))
	}

	bad := 0
	for _, c := range rows {
		if !c.Holds {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "dnssurvey: %d of %d shape claims did NOT hold\n", bad, len(rows))
		os.Exit(3)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "all %d shape claims hold (total %.1fs)\n", len(rows), time.Since(start).Seconds())
	}
}

// followLoop reads name batches from stdin and extends the survey
// incrementally, printing the delta each batch caused.
func followLoop(ctx context.Context, m *dnstrust.Monitor, quiet, stats bool) {
	if !quiet {
		fmt.Fprintln(os.Stderr, "follow mode: reading name batches from stdin (one whitespace-separated batch per line, EOF ends the session)")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		batch := strings.Fields(sc.Text())
		if len(batch) == 0 {
			continue
		}
		prev := m.At()
		prevSum := prev.Summary()
		prevQueries := m.Queries()
		start := time.Now()
		v, err := m.Add(ctx, batch...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: add failed: %v\n", err)
			continue
		}
		sum := v.Summary()
		sv := v.Survey()
		fmt.Printf("gen %d: +%d names (%d total), +%d servers, %d queries, %.2fs\n",
			v.Generation(),
			sum.Names-prevSum.Names, sum.Names,
			sum.Servers-prevSum.Servers,
			m.Queries()-prevQueries,
			time.Since(start).Seconds())
		fmt.Printf("        mean TCB %.1f -> %.1f; affected names %d -> %d\n",
			prevSum.TCB.Mean(), sum.TCB.Mean(), prevSum.AffectedNames, sum.AffectedNames)
		for _, n := range batch {
			if sz := sv.Graph.TCBSize(n); sz >= 0 {
				fmt.Printf("        %s: TCB %d\n", n, sz)
			} else if err, ok := sv.Failed[n]; ok {
				fmt.Printf("        %s: failed: %v\n", n, err)
			}
		}
		if stats {
			printStats(sv)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: stdin: %v\n", err)
	}
}

func printStats(sv *dnstrust.Survey) {
	st := sv.Stats
	fmt.Fprintf(os.Stderr,
		"engine: gen %d, %d workers, %d transport queries, %d query-memo hits, %d shared walks, %d inline fallbacks\n",
		st.Generation, st.Workers, st.Walker.Queries, st.Walker.MemoHits, st.Walker.SharedWalks, st.Walker.InlineWalks)
	fmt.Fprintf(os.Stderr,
		"phases: walk+assemble %.2fs (streamed), closure build %.3fs; %d memo entries resumed\n",
		st.WalkTime.Seconds(), st.BuildTime.Seconds(), st.MemoLoaded)
	if err := st.MemoSaveErr; err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: warning: query memo not saved: %v\n", err)
	}
}
