// Command dnssurvey runs the paper's full survey pipeline: generate the
// synthetic Internet, crawl the corpus, and regenerate every figure and
// table of the evaluation with paper-vs-measured comparisons.
//
// Usage:
//
//	dnssurvey [-names 20000] [-seed 1] [-workers 0] [-markdown] [-only "Figure 2"]
//
// The paper's full scale is -names 593160 (budget several minutes and a
// few GiB of memory).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dnstrust"
	"dnstrust/internal/report"
)

func main() {
	names := flag.Int("names", 20000, "survey corpus size (paper: 593160)")
	seed := flag.Int64("seed", 1, "world generation seed")
	workers := flag.Int("workers", 0, "crawl parallelism (0 = GOMAXPROCS)")
	markdown := flag.Bool("markdown", false, "emit the comparison table as Markdown (for EXPERIMENTS.md)")
	memoFile := flag.String("memo-file", "", "persist the query memo here and resume from it on the next run")
	only := flag.String("only", "", "run a single experiment by ID (e.g. \"Figure 7\")")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	stats := flag.Bool("stats", false, "print crawl-engine statistics (transport queries, dedup counters)")
	flag.Parse()

	ctx := context.Background()
	opts := dnstrust.Options{Seed: *seed, Names: *names, Workers: *workers, MemoFile: *memoFile}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcrawled %d/%d names", done, total)
		}
	}

	start := time.Now()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "generating world (seed %d, %d names) and crawling...\n", *seed, *names)
	}
	study, err := dnstrust.NewStudy(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\rcrawl complete: %d names, %d nameservers, %d failures (%.1fs)\n",
			len(study.Survey.Names), study.Survey.Graph.NumHosts(), len(study.Survey.Failed),
			time.Since(start).Seconds())
	}
	if *stats {
		st := study.Survey.Stats
		fmt.Fprintf(os.Stderr,
			"engine: %d workers, %d transport queries, %d query-memo hits, %d shared walks, %d inline fallbacks\n",
			st.Workers, st.Walker.Queries, st.Walker.MemoHits, st.Walker.SharedWalks, st.Walker.InlineWalks)
		fmt.Fprintf(os.Stderr,
			"phases: walk+assemble %.2fs (streamed), closure build %.3fs; %d memo entries resumed\n",
			st.WalkTime.Seconds(), st.BuildTime.Seconds(), st.MemoLoaded)
	}
	if err := study.Survey.Stats.MemoSaveErr; err != nil {
		fmt.Fprintf(os.Stderr, "dnssurvey: warning: query memo not saved: %v\n", err)
	}

	var rows []dnstrust.Comparison
	if *only != "" {
		found := false
		for _, e := range dnstrust.Experiments() {
			if e.ID == *only {
				found = true
				fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
				rows, err = e.Run(ctx, study, os.Stdout)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dnssurvey: %s: %v\n", e.ID, err)
					os.Exit(1)
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "dnssurvey: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		if err := report.ComparisonTable("\nPaper vs measured", rows).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rows, err = dnstrust.RunAll(ctx, study, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnssurvey: %v\n", err)
			os.Exit(1)
		}
	}

	if *markdown {
		fmt.Println()
		fmt.Println(report.Markdown(rows))
	}

	bad := 0
	for _, c := range rows {
		if !c.Holds {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "dnssurvey: %d of %d shape claims did NOT hold\n", bad, len(rows))
		os.Exit(3)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "all %d shape claims hold (total %.1fs)\n", len(rows), time.Since(start).Seconds())
	}
}
