// Command dnshijack runs attack simulations against a scenario world:
// pick compromised and denial-of-serviced servers, and see whether a
// target name's resolution is unaffected, partially hijackable, or
// completely hijacked — with Monte-Carlo cross-validation and the
// min-cut attack plan.
//
// Usage:
//
//	dnshijack -world fbi -target www.fbi.gov \
//	    -compromise reston-ns2.telemail.net -dos reston-ns1.telemail.net,reston-ns3.telemail.net
//
//	dnshijack -world fbi -target www.fbi.gov -plan   # print the cheapest attack
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/hijack"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func main() {
	world := flag.String("world", "fbi", "world: figure1 | fbi | ukraine")
	target := flag.String("target", "", "name to attack (defaults to the world's signature name)")
	compromise := flag.String("compromise", "", "comma-separated servers under attacker control")
	dos := flag.String("dos", "", "comma-separated servers taken down by denial of service")
	plan := flag.Bool("plan", false, "print the min-cut attack plan instead of simulating")
	trials := flag.Int("trials", 2000, "Monte-Carlo resolution strategies to sample")
	flag.Parse()

	var reg *topology.Registry
	var defTarget string
	switch *world {
	case "figure1":
		reg, defTarget = topology.Figure1World(), "www.cs.cornell.edu"
	case "fbi":
		reg, defTarget = topology.FBIWorld(), "www.fbi.gov"
	case "ukraine":
		reg, defTarget = topology.UkraineWorld(), "www.rkc.lviv.ua"
	default:
		fmt.Fprintf(os.Stderr, "dnshijack: unknown world %q\n", *world)
		os.Exit(2)
	}
	if *target == "" {
		*target = defTarget
	}

	ctx := context.Background()
	r, err := reg.Resolver(nil)
	if err != nil {
		fatal(err)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(ctx, *target)
	if err != nil {
		fatal(fmt.Errorf("walking %s: %w", *target, err))
	}
	survey := crawler.FromSnapshot(w.Snapshot(map[string][]string{*target: chain}, nil))
	probe := reg.ProbeFunc(nil)
	for _, h := range survey.Graph.Hosts() {
		if banner, err := probe(ctx, h); err == nil {
			survey.Banner[h] = banner
			if vulns := survey.DB.VulnsForBanner(banner); len(vulns) > 0 {
				survey.Vulns[h] = vulns
			}
		}
	}

	if *plan {
		printPlan(survey, *target)
		return
	}

	comp := splitHosts(*compromise)
	downed := splitHosts(*dos)
	atk, err := hijack.New(survey.Graph, comp, downed)
	if err != nil {
		fatal(err)
	}
	verdict, err := atk.Verdict(*target)
	if err != nil {
		fatal(err)
	}
	frac, err := atk.MonteCarlo(*target, *trials, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("target:       %s\n", *target)
	fmt.Printf("compromised:  %v\n", comp)
	fmt.Printf("dos'd:        %v\n", downed)
	fmt.Printf("verdict:      %v hijack\n", verdict)
	fmt.Printf("monte carlo:  %.1f%% of %d random resolution strategies diverted\n",
		100*frac, *trials)
}

func printPlan(s *crawler.Survey, target string) {
	res, err := analysis.BottleneckOf(s, target)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bottleneck analysis for %s\n", target)
	fmt.Printf("minimum complete-hijack cut: %d servers\n", res.Size)
	for _, h := range res.Cut {
		status := "SAFE"
		if s.Vulnerable(h) {
			status = "VULNERABLE: " + vulnNames(s, h)
		}
		fmt.Printf("  %-34s %s\n", h, status)
	}
	fmt.Printf("cheapest mixed attack: compromise %d vulnerable + DoS %d safe bottleneck servers\n",
		res.VulnInCut, res.SafeInCut)
	exact := analysis.ANDORHijackBound(s, []string{target})
	if len(exact) == 1 {
		fmt.Printf("AND/OR tree-cost bound: %d server compromises\n", exact[0])
	}
}

func vulnNames(s *crawler.Survey, host string) string {
	var names []string
	for _, v := range s.Vulns[host] {
		names = append(names, v.Name)
	}
	return strings.Join(names, ", ")
}

func splitHosts(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dnshijack: %v\n", err)
	os.Exit(1)
}
