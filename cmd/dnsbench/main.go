// Command dnsbench runs the survey engine's benchmark suite and writes
// the results as machine-readable JSON, so the performance trajectory of
// the crawl engine is tracked from PR to PR.
//
// Usage:
//
//	dnsbench [-out BENCH_1.json] [-names 1200] [-seed 5] [-rtt 200µs]
//
// The crawl benchmarks run over a simulated per-query round-trip
// (surveys are network-bound; worker scaling means overlapping RTTs),
// plus a zero-RTT CPU-only crawl, a cache-contention microbench, the
// incremental graph-build benchmarks (synthetic 100k/1M-name corpora
// streamed through core.Builder, reporting build time and per-name
// memory so the flat-memory claim is tracked from PR to PR), the
// Monitor-era benchmarks (incremental epoch adds vs one batch build,
// view read throughput during a crawl, the chain-memo cold/warm
// second-pass ratio on a real survey via -memo-names), the timeline
// benchmarks: the warm generation diff after a small Add on a 100k-name
// survey (gated) and the retained-generation memory comparison —
// bytes/generation with the copy-on-write epoch store versus detached
// full-table epochs — the snapshot cold-start benchmark (gated):
// restoring a 100k-name monitor from a binary epoch-store snapshot
// versus rebuilding it from a recorded query log, via -snapshot-names —
// and the serving-path benchmarks (gated): the verdict cache hit path
// under concurrent generation commits (held to an absolute >=100k
// lookups/s floor by cmd/benchdiff) and the proxy handler end to end.
// The fleet merge benchmark (gated) measures the coordinator's
// id-remapping merge: three shard snapshots of the survey corpus are
// decoded once up front, then each iteration unions them into a fresh
// fleet view, reported as ns/name over the merged corpus.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dnstrust"
	"dnstrust/internal/analysis"
	"dnstrust/internal/atomicio"
	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/delta"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/fleet"
	"dnstrust/internal/proxy"
	"dnstrust/internal/resolver"
	"dnstrust/internal/snapshot"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
	"dnstrust/internal/verdict"
)

// Result is one benchmark's machine-readable outcome.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the file schema of BENCH_N.json.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Names      int      `json:"names"`
	Seed       int64    `json:"seed"`
	RTT        string   `json:"rtt"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_8.json", "output file")
	names := flag.Int("names", 1200, "benchmark corpus size")
	seed := flag.Int64("seed", 5, "world generation seed")
	rtt := flag.Duration("rtt", 200*time.Microsecond, "simulated per-query round-trip for crawl benches")
	memoNames := flag.Int("memo-names", 20_000, "survey size for the chain-memo second-pass benchmark (0 skips it; BENCH_3.json was recorded at 100000)")
	snapNames := flag.Int("snapshot-names", 100_000, "survey size for the snapshot cold-start benchmark (0 skips it; the >=50x restart claim is stated at 100000)")
	flag.Parse()

	world, err := topology.Generate(topology.GenParams{Seed: *seed, Names: *names})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Names:      *names,
		Seed:       *seed,
		RTT:        rtt.String(),
	}

	crawlBench := func(workers int, queryRTT time.Duration) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := world.Registry.Source()
				if queryRTT > 0 {
					tr = transport.Chain(tr, transport.Latency(transport.FixedRTT(queryRTT)))
				}
				r, err := world.Registry.Resolver(tr)
				if err != nil {
					b.Fatal(err)
				}
				s, err := crawler.Run(context.Background(), r, world.Corpus, nil,
					crawler.Config{Workers: workers, SkipVersionProbe: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Names) != len(world.Corpus) {
					b.Fatalf("walked %d of %d names", len(s.Names), len(world.Corpus))
				}
			}
			b.ReportMetric(float64(len(world.Corpus))*float64(b.N)/b.Elapsed().Seconds(), "names/s")
		}
	}

	run := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       r.Extra,
		})
	}

	for _, workers := range []int{1, 4, 8, 16} {
		run(fmt.Sprintf("SurveyCrawlWorkers/workers=%d", workers), crawlBench(workers, *rtt))
	}
	run("SurveyCrawlDirect", crawlBench(0, 0))

	// Replay throughput: record one direct crawl (including fingerprint
	// probes), then measure how fast a whole survey is served back from
	// the recorded log alone — the offline crawl-from-recording mode.
	// Gated by cmd/benchdiff on replay ns/name alongside the build gate.
	{
		log := transport.NewLog()
		rec := transport.Chain(world.Registry.Source(), transport.Record(log))
		r, err := world.Registry.Resolver(rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		if _, err := crawler.Run(context.Background(), r, world.Corpus,
			world.Registry.ProbeFunc(rec), crawler.Config{}); err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: recording crawl: %v\n", err)
			os.Exit(1)
		}
		run(fmt.Sprintf("ReplayCrawl/names=%d", len(world.Corpus)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rp, err := world.Registry.Resolver(transport.Replay(log))
				if err != nil {
					b.Fatal(err)
				}
				s, err := crawler.Run(context.Background(), rp, world.Corpus,
					world.Registry.ProbeFunc(transport.Replay(log)), crawler.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Names) != len(world.Corpus) {
					b.Fatalf("replayed %d of %d names", len(s.Names), len(world.Corpus))
				}
			}
			b.ReportMetric(float64(len(world.Corpus))*float64(b.N)/b.Elapsed().Seconds(), "names/s")
		})
	}
	for _, scale := range []int{100_000, 1_000_000} {
		scale := scale
		run(fmt.Sprintf("IncrementalBuild/names=%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			var finishNs float64
			for i := 0; i < b.N; i++ {
				g, finish := core.SyntheticBuild(scale)
				finishNs += float64(finish.Nanoseconds())
				if g.NumHosts() == 0 || g.NumNames() != scale {
					b.Fatalf("built %d names, %d hosts", g.NumNames(), g.NumHosts())
				}
			}
			b.ReportMetric(float64(scale)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
			b.ReportMetric(finishNs/float64(b.N)/1e6, "finish-ms/op")
		})
	}
	// Timeline benchmarks: the warm generation diff after a small Add on
	// a 100k-name survey (gated by cmd/benchdiff: identical chains must
	// keep short-circuiting, so diff cost tracks what changed, not the
	// corpus), and the retention memory claim — bytes pinned per live
	// generation with the copy-on-write epoch store versus detached
	// full-table epochs.
	{
		const scale = 100_000
		const extra = 50
		bu := core.NewBuilder(scale + extra)
		core.FeedSyntheticRange(bu, 0, scale, scale+extra)
		older := crawler.FromGraph(bu.FinishEpoch())
		core.FeedSyntheticRange(bu, scale, scale+extra, scale+extra)
		newer := crawler.FromGraph(bu.FinishEpoch())
		run(fmt.Sprintf("TimelineDiff/names=%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := delta.Compute(context.Background(), older, newer, delta.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(d.NamesAdded) != extra {
					b.Fatalf("delta saw %d added names, want %d", len(d.NamesAdded), extra)
				}
			}
		})
	}
	rep.Benchmarks = append(rep.Benchmarks, measureRetention())

	// Fleet merge (gated): the corpus is partitioned over a three-shard
	// consistent-hash ring, each partition crawled on its own engine and
	// exported as a snapshot epoch once outside the timer; the benchmark
	// then measures the coordinator's id-remapping union of those epochs
	// into a fresh merged view — the cold-commit cost a fleet router pays
	// per round, with zero transport traffic by construction.
	{
		ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
		parts := ring.Assign(world.Corpus)
		shardNames := ring.Shards()
		shards := make([]fleet.Shard, len(shardNames))
		for i, name := range shardNames {
			tr := world.Registry.Source()
			r, err := world.Registry.Resolver(tr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
				os.Exit(1)
			}
			e, err := crawler.NewEngine(r, world.Registry.ProbeFunc(tr), crawler.Config{Workers: 4, ShardName: name})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
				os.Exit(1)
			}
			if _, err := e.Add(context.Background(), parts[i]...); err != nil {
				fmt.Fprintf(os.Stderr, "dnsbench: shard %s crawl: %v\n", name, err)
				os.Exit(1)
			}
			var buf bytes.Buffer
			if err := e.WriteSnapshot(&buf); err != nil {
				fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
				os.Exit(1)
			}
			e.Close()
			f, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
				os.Exit(1)
			}
			ep, err := fleet.DecodeEpoch(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
				os.Exit(1)
			}
			shards[i] = fleet.Shard{Name: name, Source: &fleet.FixedSource{Epoch: ep}}
		}
		run(fmt.Sprintf("FleetMerge/shards=%d/names=%d", len(shardNames), len(world.Corpus)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := fleet.New(shards, fleet.Config{})
				if err != nil {
					b.Fatal(err)
				}
				fv, err := c.Commit(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if fv.NumNames() != len(world.Corpus) {
					b.Fatalf("merged %d of %d names", fv.NumNames(), len(world.Corpus))
				}
			}
			b.ReportMetric(float64(len(world.Corpus))*float64(b.N)/b.Elapsed().Seconds(), "names/s")
		})
	}

	// Monitor-era benchmarks: incremental epoch adds vs one batch build,
	// read throughput against immutable views during a crawl, and the
	// chain-memo warm/cold ratio the ≥10x second-pass claim rests on.
	run("MonitorIncrementalAdd/batch=1x1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, _ := core.SyntheticBuild(1_000_000)
			if g.NumNames() != 1_000_000 {
				b.Fatalf("built %d names", g.NumNames())
			}
		}
		b.ReportMetric(1_000_000*float64(b.N)/b.Elapsed().Seconds(), "names/s")
	})
	run("MonitorIncrementalAdd/adds=10x100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bu := core.NewBuilder(1_000_000)
			var g *core.Graph
			for lo := 0; lo < 1_000_000; lo += 100_000 {
				core.FeedSyntheticRange(bu, lo, lo+100_000, 1_000_000)
				g = bu.FinishEpoch()
			}
			if g.NumNames() != 1_000_000 {
				b.Fatalf("built %d names", g.NumNames())
			}
		}
		b.ReportMetric(1_000_000*float64(b.N)/b.Elapsed().Seconds(), "names/s")
	})

	run("ViewQueryThroughput", func(b *testing.B) {
		ctx := context.Background()
		m, err := dnstrust.OpenWorld(ctx, world, dnstrust.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		half := len(world.Corpus) / 2
		if _, err := m.Add(ctx, world.Corpus[:half]...); err != nil {
			b.Fatal(err)
		}
		vnames := m.At().Names()
		addDone := make(chan error, 1)
		go func() { _, err := m.Add(ctx, world.Corpus[half:]...); addDone <- err }()
		b.ReportAllocs()
		b.ResetTimer()
		var readErr atomic.Pointer[error]
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				v := m.At()
				name := vnames[i%len(vnames)]
				i++
				if _, err := v.TCB(name); err != nil {
					readErr.CompareAndSwap(nil, &err)
					return
				}
				if _, err := v.Bottleneck(name); err != nil {
					readErr.CompareAndSwap(nil, &err)
					return
				}
			}
		})
		b.StopTimer()
		if errp := readErr.Load(); errp != nil {
			b.Fatal(*errp)
		}
		if err := <-addDone; err != nil {
			b.Fatal(err)
		}
	})

	if *memoNames > 0 {
		memoStudy, err := dnstrust.NewStudy(context.Background(), dnstrust.Options{Seed: 3, Names: *memoNames})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		memoPass := func(b *testing.B, memo *analysis.ChainMemo) {
			sv := memoStudy.Survey
			if _, err := analysis.BottlenecksMemo(context.Background(), sv, sv.Names, 0, memo); err != nil {
				b.Fatal(err)
			}
			if sum := analysis.SummarizeMemo(sv, sv.Names, memo); sum.Names != len(sv.Names) {
				b.Fatalf("summary covered %d of %d names", sum.Names, len(sv.Names))
			}
		}
		run("ChainMemoSecondPass/first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				memoPass(b, analysis.NewChainMemo())
			}
		})
		warmMemo := analysis.NewChainMemo()
		if _, err := analysis.BottlenecksMemo(context.Background(), memoStudy.Survey, memoStudy.Survey.Names, 0, warmMemo); err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		analysis.SummarizeMemo(memoStudy.Survey, memoStudy.Survey.Names, warmMemo)
		run("ChainMemoSecondPass/second", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				memoPass(b, warmMemo)
			}
		})
	}

	// Snapshot cold start: restoring a monitored survey from a binary
	// epoch-store snapshot versus rebuilding it by re-crawling from a
	// recorded query log (the previous-best offline restart path). Both
	// gated by cmd/benchdiff on ns/name; the snapshot/replay ns/op ratio
	// is the restart speedup the >=50x claim rests on.
	if *snapNames > 0 {
		snapWorld, err := topology.Generate(topology.GenParams{Seed: 7, Names: *snapNames})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		qlog := transport.NewLog()
		snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("dnsbench-%d.snap", os.Getpid()))
		defer os.Remove(snapPath)
		ctx := context.Background()
		fmt.Fprintf(os.Stderr, "crawling %d names for the snapshot cold-start benchmark...\n", *snapNames)
		m, err := dnstrust.OpenWorld(ctx, snapWorld, dnstrust.Options{RecordLog: qlog, SnapshotFile: snapPath})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		if _, err := m.Add(ctx, snapWorld.Corpus...); err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		if err := m.Close(); err != nil { // saves the snapshot
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		var snapSize float64
		if fi, err := os.Stat(snapPath); err == nil {
			snapSize = float64(fi.Size())
		}
		coldStart := func(opts dnstrust.Options, crawl bool) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := dnstrust.OpenWorld(ctx, snapWorld, opts)
					if err != nil {
						b.Fatal(err)
					}
					if crawl {
						if _, err := m.Add(ctx, snapWorld.Corpus...); err != nil {
							b.Fatal(err)
						}
					} else if m.Queries() != 0 {
						b.Fatalf("snapshot cold start issued %d queries", m.Queries())
					}
					if got := m.At().NumNames(); got != len(snapWorld.Corpus) {
						b.Fatalf("cold start serves %d of %d names", got, len(snapWorld.Corpus))
					}
					b.StopTimer()
					m.Close()
					b.StartTimer()
				}
				b.ReportMetric(float64(*snapNames)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
				if !crawl {
					b.ReportMetric(snapSize, "snapshot-bytes")
				}
			}
		}
		run(fmt.Sprintf("SnapshotColdStart/snapshot/names=%d", *snapNames),
			coldStart(dnstrust.Options{SnapshotFile: snapPath}, false))
		run(fmt.Sprintf("SnapshotColdStart/replay/names=%d", *snapNames),
			coldStart(dnstrust.Options{ReplayLog: qlog}, true))
	}

	// Serving-path benchmarks: the verdict cache under generation churn
	// (gated by cmd/benchdiff on ns/op and on the absolute >=100k
	// lookups/s floor) and the proxy handler end to end (gated on ns/op).
	{
		ctx := context.Background()
		m, err := dnstrust.OpenWorld(ctx, world, dnstrust.Options{Workers: 4})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{TTL: time.Hour})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		m.OnCommit(func(v *dnstrust.View) { cache.Advance(v.Survey()) })
		if _, err := m.Add(ctx, world.Corpus...); err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		vnames := m.At().Names()
		for _, n := range vnames {
			cache.Lookup(n)
		}
		run(fmt.Sprintf("VerdictLookup/names=%d", len(world.Corpus)), func(b *testing.B) {
			stop := make(chan struct{})
			type churnResult struct {
				commits uint64
				err     error
			}
			churned := make(chan churnResult, 1)
			go func() {
				var res churnResult
				defer func() { churned <- res }()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					lo := (i * 25) % len(vnames)
					hi := lo + 25
					if hi > len(vnames) {
						hi = len(vnames)
					}
					if _, err := m.Add(ctx, vnames[lo:hi]...); err != nil {
						res.err = err
						return
					}
					res.commits++
					i++
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if cache.Lookup(vnames[i%len(vnames)]) == nil {
						panic("nil verdict")
					}
					i++
				}
			})
			b.StopTimer()
			close(stop)
			res := <-churned
			if res.err != nil {
				b.Fatal(res.err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
			b.ReportMetric(float64(res.commits), "commits")
		})

		src := world.Registry.Source()
		r, err := resolver.New(src, resolver.Config{Roots: world.Registry.RootServers()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		p, err := proxy.New(proxy.Config{Resolver: r, Cache: cache})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
			os.Exit(1)
		}
		run(fmt.Sprintf("ProxyServe/names=%d", len(world.Corpus)), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					name := vnames[i%len(vnames)]
					i++
					resp := p.ServeDNS(ctx, dnswire.NewQuery(uint16(i), name, dnswire.TypeA, dnswire.ClassINET))
					if resp == nil || resp.RCode == dnswire.RCodeServFail {
						panic(fmt.Sprintf("proxy failed on %s: %v", name, resp))
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
		src.Close()
		cache.Close()
		m.Close()
	}

	run("WalkerContention", func(b *testing.B) {
		r, err := world.Registry.Resolver(nil)
		if err != nil {
			b.Fatal(err)
		}
		w := resolver.NewWalker(r)
		ctx := context.Background()
		for _, n := range world.Corpus {
			if _, err := w.WalkName(ctx, n); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		// b.Fatal must not be called from RunParallel workers; collect
		// the first error and fail on the benchmark goroutine.
		var walkErr atomic.Pointer[error]
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := world.Corpus[i%len(world.Corpus)]
				i++
				if _, err := w.WalkName(ctx, name); err != nil {
					walkErr.CompareAndSwap(nil, &err)
					return
				}
			}
		})
		if errp := walkErr.Load(); errp != nil {
			b.Fatal(*errp)
		}
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
		os.Exit(1)
	}
	writeReport(*out, data, len(rep.Benchmarks))
}

// measureRetention quantifies what one retained generation costs: a
// 100k-name survey takes eight small Adds, each committing an epoch that
// stays live. With the copy-on-write epoch store a generation pins array
// headers plus whatever changed; the "without" baseline detaches each
// epoch into a self-contained graph (cloned intern maps, materialized
// chain tables) — the cost every retained generation paid before the
// store existed. Reported as heap bytes per generation after a full GC.
func measureRetention() Result {
	fmt.Fprintln(os.Stderr, "running RetainedGenerationMemory...")
	const scale = 100_000
	const gens = 8
	const extra = 50
	total := scale + gens*extra

	bu := core.NewBuilder(total)
	core.FeedSyntheticRange(bu, 0, scale, total)
	base := bu.FinishEpoch()

	heap := func() float64 {
		// Two cycles so transient build garbage (scratch unions the
		// copy-on-write aliasing dropped, finalizer-held spans) is fully
		// reclaimed before reading — the per-generation signal is small.
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	}

	retained := make([]*core.Graph, 0, gens)
	for i := 0; i < gens; i++ {
		lo := scale + i*extra
		core.FeedSyntheticRange(bu, lo, lo+extra, total)
		retained = append(retained, bu.FinishEpoch())
	}

	// Measure by *dropping* references between settled readings, so the
	// deltas isolate exactly the retained structures (heap churn from
	// unrelated earlier work cancels out): first the cost of N detached
	// (full-table) copies, then the cost of the N-1 older copy-on-write
	// generations relative to keeping only the newest.
	hAll := heap()
	detached := make([]*core.Graph, 0, gens-1)
	for _, g := range retained[:gens-1] {
		detached = append(detached, g.Detach())
	}
	hDetached := heap()
	runtime.KeepAlive(detached)
	detached = nil
	for i := range retained[:gens-1] {
		retained[i] = nil
	}
	hNewestOnly := heap()

	fullPerGen := (hDetached - hAll) / (gens - 1)
	cowPerGen := (hAll - hNewestOnly) / (gens - 1)
	runtime.KeepAlive(base)
	runtime.KeepAlive(retained)

	return Result{
		Name:       fmt.Sprintf("RetainedGenerationMemory/names=%d", scale),
		Iterations: gens,
		Extra: map[string]float64{
			"cow-bytes/gen":      cowPerGen,
			"detached-bytes/gen": fullPerGen,
		},
	}
}

func writeReport(out string, data []byte, n int) {
	data = append(data, '\n')
	// Atomic replace: benchdiff may read the previous report while a
	// new run is still writing (and a crashed run must not leave half a
	// JSON report for CI to trip over).
	if _, err := atomicio.WriteFile(out, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, n)
}
