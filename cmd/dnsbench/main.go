// Command dnsbench runs the survey engine's benchmark suite and writes
// the results as machine-readable JSON, so the performance trajectory of
// the crawl engine is tracked from PR to PR.
//
// Usage:
//
//	dnsbench [-out BENCH_1.json] [-names 1200] [-seed 5] [-rtt 200µs]
//
// The crawl benchmarks run over a simulated per-query round-trip
// (surveys are network-bound; worker scaling means overlapping RTTs),
// plus a zero-RTT CPU-only crawl, a cache-contention microbench, and the
// incremental graph-build benchmarks (synthetic 100k/1M-name corpora
// streamed through core.Builder, reporting build time and per-name
// memory so the flat-memory claim is tracked from PR to PR).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

// Result is one benchmark's machine-readable outcome.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the file schema of BENCH_N.json.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Names      int      `json:"names"`
	Seed       int64    `json:"seed"`
	RTT        string   `json:"rtt"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_2.json", "output file")
	names := flag.Int("names", 1200, "benchmark corpus size")
	seed := flag.Int64("seed", 5, "world generation seed")
	rtt := flag.Duration("rtt", 200*time.Microsecond, "simulated per-query round-trip for crawl benches")
	flag.Parse()

	world, err := topology.Generate(topology.GenParams{Seed: *seed, Names: *names})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Names:      *names,
		Seed:       *seed,
		RTT:        rtt.String(),
	}

	crawlBench := func(workers int, queryRTT time.Duration) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var tr resolver.Transport = topology.NewDirectTransport(world.Registry)
				if queryRTT > 0 {
					tr = topology.NewLatencyTransport(tr, queryRTT)
				}
				r, err := world.Registry.Resolver(tr)
				if err != nil {
					b.Fatal(err)
				}
				s, err := crawler.Run(context.Background(), r, world.Corpus, nil,
					crawler.Config{Workers: workers, SkipVersionProbe: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Names) != len(world.Corpus) {
					b.Fatalf("walked %d of %d names", len(s.Names), len(world.Corpus))
				}
			}
			b.ReportMetric(float64(len(world.Corpus))*float64(b.N)/b.Elapsed().Seconds(), "names/s")
		}
	}

	run := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       r.Extra,
		})
	}

	for _, workers := range []int{1, 4, 8, 16} {
		run(fmt.Sprintf("SurveyCrawlWorkers/workers=%d", workers), crawlBench(workers, *rtt))
	}
	run("SurveyCrawlDirect", crawlBench(0, 0))
	for _, scale := range []int{100_000, 1_000_000} {
		scale := scale
		run(fmt.Sprintf("IncrementalBuild/names=%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			var finishNs float64
			for i := 0; i < b.N; i++ {
				g, finish := core.SyntheticBuild(scale)
				finishNs += float64(finish.Nanoseconds())
				if g.NumHosts() == 0 || g.NumNames() != scale {
					b.Fatalf("built %d names, %d hosts", g.NumNames(), g.NumHosts())
				}
			}
			b.ReportMetric(float64(scale)*float64(b.N)/b.Elapsed().Seconds(), "names/s")
			b.ReportMetric(finishNs/float64(b.N)/1e6, "finish-ms/op")
		})
	}
	run("WalkerContention", func(b *testing.B) {
		r, err := world.Registry.Resolver(nil)
		if err != nil {
			b.Fatal(err)
		}
		w := resolver.NewWalker(r)
		ctx := context.Background()
		for _, n := range world.Corpus {
			if _, err := w.WalkName(ctx, n); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		// b.Fatal must not be called from RunParallel workers; collect
		// the first error and fail on the benchmark goroutine.
		var walkErr atomic.Pointer[error]
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := world.Corpus[i%len(world.Corpus)]
				i++
				if _, err := w.WalkName(ctx, name); err != nil {
					walkErr.CompareAndSwap(nil, &err)
					return
				}
			}
		})
		if errp := walkErr.Load(); errp != nil {
			b.Fatal(*errp)
		}
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dnsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
