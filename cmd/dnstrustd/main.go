// Command dnstrustd is the trust-aware resolving DNS proxy: a real
// UDP/TCP DNS frontend that resolves queries iteratively upstream and
// applies the monitor's transitive-trust verdict to every name before
// answering — allow serves silently, flag serves and logs, refuse
// answers REFUSED without contacting upstream at all. It is the
// serving-path counterpart of dnsmonitord: the same continuously
// extendable survey, consulted at wire speed on the query path instead
// of over HTTP after the fact.
//
// Usage:
//
//	dnstrustd [-listen 127.0.0.1:5353] [-names 20000] [-seed 1] [-workers 0]
//	          [-memo-file crawl.memo] [-snapshot session.snap]
//	          [-record crawl.qlog] [-replay crawl.qlog] [-live]
//	          [-max-tcb 100] [-narrow-cut 1] [-flag-only]
//	          [-verdict-ttl 1m] [-queue 1024] [-stats-every 60s]
//
// Per-name verdicts come from a sharded, lock-free cache invalidated
// precisely at each generation commit: only names whose delegation
// chains changed are evicted, so a commit never stalls the serving hot
// path. Names the monitor has never surveyed are answered immediately
// with a provisional flag verdict and queued for a background crawl;
// once it commits, the next query sees the real verdict.
//
// The policy matrix:
//
//	refuse  hijackable (exec/poison-class vulnerable) server in the TCB,
//	        or a minimum cut made up entirely of vulnerable servers
//	flag    TCB larger than -max-tcb, min-cut at most -narrow-cut,
//	        DoS-class vulnerable dependency, name unknown or unwalkable
//	allow   everything else
//
// -flag-only downgrades refusals to flags (monitor mode).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnstrust"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/proxy"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
	"dnstrust/internal/verdict"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5353", "DNS listen address (UDP and TCP)")
	names := flag.Int("names", 20000, "initial survey corpus size")
	seed := flag.Int64("seed", 1, "world generation seed")
	workers := flag.Int("workers", 0, "crawl parallelism (0 = GOMAXPROCS)")
	memoFile := flag.String("memo-file", "", "persist the query memo here and resume from it")
	snapshot := flag.String("snapshot", "", "persist the session snapshot here: restored at boot, saved on SIGTERM")
	record := flag.String("record", "", "record every monitor transport exchange into this query-log file")
	replay := flag.String("replay", "", "serve the session from this recorded query log (strict: unrecorded queries fail)")
	live := flag.Bool("live", false, "boot the world's nameservers on loopback and resolve over real UDP/TCP sockets")
	maxTCB := flag.Int("max-tcb", 100, "flag names whose trusted computing base exceeds this many servers (-1 disables)")
	narrowCut := flag.Int("narrow-cut", 1, "flag names whose minimum delegation cut is at most this many servers (-1 disables)")
	flagOnly := flag.Bool("flag-only", false, "monitor mode: downgrade refusals to flagged answers")
	verdictTTL := flag.Duration("verdict-ttl", time.Minute, "verdict cache TTL (generation commits invalidate changed names immediately)")
	queueSize := flag.Int("queue", 1024, "background crawl queue bound for never-seen names")
	statsEvery := flag.Duration("stats-every", time.Minute, "periodic stats log interval (0 disables)")
	flag.Parse()

	ctx := context.Background()
	opts := dnstrust.Options{Seed: *seed, Names: *names, Workers: *workers,
		MemoFile: *memoFile, SnapshotFile: *snapshot}
	var recLog *dnstrust.QueryLog
	if *record != "" {
		recLog = transport.NewLog()
		opts.RecordLog = recLog
	}
	var replayLog *dnstrust.QueryLog
	if *replay != "" {
		lg := transport.NewLog()
		n, err := lg.LoadFile(*replay)
		if err != nil {
			log.Fatalf("dnstrustd: %s: %v", *replay, err)
		}
		log.Printf("replaying %s: %d recorded questions", *replay, n)
		opts.ReplayLog = lg
		replayLog = lg
	}

	log.Printf("generating world (seed %d, %d names)...", *seed, *names)
	start := time.Now()
	world, err := dnstrust.NewWorld(opts)
	if err != nil {
		log.Fatalf("dnstrustd: %v", err)
	}

	// The upstream terminal is shared between the monitor's crawls and
	// the proxy's resolutions, so both see the same Internet. The
	// monitor owns it (OpenWorld composes and closes the chain); the
	// proxy's resolver queries the terminal directly and is shut down
	// first. Under strict replay the recorded log is the only Internet
	// for both.
	var upstream transport.Source
	switch {
	case *replay != "":
		if *live {
			log.Printf("dnstrustd: -live ignored: strict -replay serves everything from the recording")
		}
		upstream = transport.Replay(replayLog)
	case *live:
		lv, err := topology.StartLive(ctx, world.Registry)
		if err != nil {
			log.Fatalf("dnstrustd: starting live servers: %v", err)
		}
		log.Printf("booted %d real DNS servers on loopback", lv.NumServers())
		opts.Source = transport.From(lv)
		upstream = opts.Source
	default:
		opts.Source = world.Registry.Source()
		upstream = opts.Source
	}

	m, err := dnstrust.OpenWorld(ctx, world, opts)
	if err != nil {
		log.Fatalf("dnstrustd: %v", err)
	}

	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{
		Policy:   verdict.Policy{MaxTCB: *maxTCB, NarrowCut: *narrowCut, FlagOnly: *flagOnly},
		TTL:      *verdictTTL,
		MaxQueue: *queueSize,
		Add: func(ctx context.Context, names ...string) error {
			_, err := m.Add(ctx, names...)
			return err
		},
	})
	if err != nil {
		log.Fatalf("dnstrustd: %v", err)
	}
	m.OnCommit(func(v *dnstrust.View) { cache.Advance(v.Survey()) })

	if v := m.At(); v.Generation() > 0 {
		log.Printf("snapshot: restored generation %d from %s", v.Generation(), *snapshot)
		cache.Advance(v.Survey())
	} else {
		log.Printf("crawling initial corpus...")
		v, err := m.Add(ctx, m.World().Corpus...)
		if err != nil {
			m.Close()
			log.Fatalf("dnstrustd: initial crawl: %v", err)
		}
		log.Printf("generation %d ready: %d names, %d nameservers (%.1fs)",
			v.Generation(), v.NumNames(), v.Survey().Graph.NumHosts(), time.Since(start).Seconds())
		saveRecording(recLog, *record)
		if *snapshot != "" {
			if _, err := m.Snapshot(); err != nil {
				log.Printf("dnstrustd: snapshot: %v", err)
			}
		}
	}

	r, err := resolver.New(upstream, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		log.Fatalf("dnstrustd: %v", err)
	}
	p, err := proxy.New(proxy.Config{
		Resolver: r,
		Cache:    cache,
		Logger:   log.Default(),
	})
	if err != nil {
		log.Fatalf("dnstrustd: %v", err)
	}
	srv, err := dnsserver.Start(ctx, *listen, dnsserver.Config{Handler: p})
	if err != nil {
		log.Fatalf("dnstrustd: %v", err)
	}
	log.Printf("serving DNS on %s (udp+tcp); policy: max-tcb=%d narrow-cut=%d flag-only=%v",
		srv.Addr(), *maxTCB, *narrowCut, *flagOnly)

	// The stats reporter gets an explicit stop edge (a time.Tick range
	// never terminates and would outlive the drain below, racing the
	// final stats line).
	statsStop := make(chan struct{})
	if *statsEvery > 0 {
		tick := time.NewTicker(*statsEvery)
		go func() {
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					ps, cs := p.Stats(), cache.Stats()
					log.Printf("stats: served=%d refused=%d flagged=%d failed=%d | cache gen=%d size=%d hits=%d misses=%d evicted=%d queued=%d",
						ps.Served, ps.Refused, ps.Flagged, ps.Failed,
						cs.Generation, cs.Size, cs.Hits, cs.Misses, cs.Evicted, cs.Enqueued)
				case <-statsStop:
					return
				}
			}
		}()
	}

	// SIGTERM/SIGINT: drain in-flight queries, stop the crawl queue,
	// save session state, exit.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	sig := <-sigc
	log.Printf("%v: draining and shutting down", sig)
	close(statsStop)
	sdCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		log.Printf("dnstrustd: drain: %v", err)
	}
	cache.Close()
	if err := m.Close(); err != nil {
		log.Printf("dnstrustd: shutdown: %v", err)
		os.Exit(1)
	}
	saveRecording(recLog, *record)
	ps := p.Stats()
	log.Printf("served=%d refused=%d flagged=%d failed=%d", ps.Served, ps.Refused, ps.Flagged, ps.Failed)
}

func saveRecording(lg *dnstrust.QueryLog, path string) {
	if lg == nil || path == "" {
		return
	}
	if n, err := lg.SaveFile(path); err != nil {
		log.Printf("dnstrustd: saving recording: %v", err)
	} else {
		log.Printf("recorded %d questions into %s", n, path)
	}
}
