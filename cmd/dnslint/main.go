// Command dnslint runs the project's static-analysis suite
// (internal/lint) over the given package patterns and reports every
// finding as file:line:col: message (analyzer).
//
//	go run ./cmd/dnslint ./...
//
// -json emits the findings as a JSON array (analyzer, file, line, col,
// message; paths module-root-relative) for tooling; -github emits
// GitHub Actions ::error workflow commands so CI findings annotate the
// pull-request diff inline. Exit status: 0 when the tree is clean, 1
// when there are findings, 2 when the load itself failed. Findings are
// suppressed per line with //lint:allow <analyzer> <reason>; the reason
// is mandatory. See the README's "Static analysis" section for what
// each analyzer guards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dnstrust/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "directory to resolve patterns from (must be inside the module)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array (module-root-relative paths)")
	asGitHub := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dnslint [flags] [packages]\n\nRuns the dnstrust analyzer suite (default patterns: ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "dnslint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnslint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnslint:", err)
		os.Exit(2)
	}

	var findings []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnslint:", err)
			os.Exit(2)
		}
		findings = append(findings, diags...)
	}

	switch {
	case *asJSON && *asGitHub:
		fmt.Fprintln(os.Stderr, "dnslint: -json and -github are mutually exclusive")
		os.Exit(2)
	case *asJSON:
		err = lint.WriteJSON(os.Stdout, root, findings)
	case *asGitHub:
		err = lint.WriteGitHub(os.Stdout, root, findings)
	default:
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnslint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dnslint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
