// Command dnsmonitord serves a monitored survey over HTTP/JSON — the
// paper's transitive-trust analyses as a continuously extendable
// service instead of a one-shot batch.
//
// Usage:
//
//	dnsmonitord [-addr :8053] [-names 20000] [-seed 1] [-workers 0] [-retain 8]
//	            [-memo-file crawl.memo] [-snapshot session.snap]
//	            [-record crawl.qlog] [-replay crawl.qlog] [-live]
//	            [-shard-name s0]
//
// On startup the daemon generates the synthetic world, crawls the
// initial corpus, and then serves:
//
//	GET  /summary            headline statistics of the latest generation
//	GET  /tcb?name=N         trusted computing base of a surveyed name
//	GET  /bottleneck?name=N  §3.2 min-cut analysis of a name
//	GET  /audit?name=N       §5 trust-audit findings for a name
//	GET  /verdict?name=N     serving-path policy verdict (allow / flag /
//	                         refuse) from the same lock-free cache
//	                         dnstrustd consults per query; a never-seen
//	                         name answers provisionally and is queued
//	                         for a background crawl
//	GET  /stats              crawl-engine counters and generation
//	GET  /generations        the retained timeline (-retain bounds it)
//	GET  /diff?from=&to=     typed trust delta between two retained
//	                         generations (TCB drift, min-cut movement,
//	                         zone/chain churn)
//	GET  /watch?since=&grow=&limit=
//	                         names whose TCB grew by >= grow hosts (or
//	                         past limit total) since generation `since`
//	GET  /snapshot           stream the session snapshot (the fleet pull
//	                         path); the generation doubles as the ETag,
//	                         so If-None-Match answers 304 when nothing
//	                         committed since the caller's last fetch
//	POST /add                whitespace-separated names in the body are
//	                         added incrementally; responds with the delta
//	POST /snapshot           save the session snapshot now; responds with
//	                         {generation, bytes, seconds}
//
// -shard-name labels the monitor as one shard of a fleet: snapshots
// (files and GET /snapshot exports alike) carry the label, and a
// dnsfleetd coordinator refuses to merge a shard that answers under
// the wrong name.
//
// -snapshot makes the session durable: the epoch store is saved to the
// file atomically after the initial crawl, after every committed /add,
// and on SIGTERM; at the next boot the daemon restores the last
// committed generation from it in load time — skipping the initial
// crawl entirely, with zero transport queries — and keeps extending it.
// A kill at any point, mid-save included, leaves the previous complete
// snapshot in place, never a loadable partial one.
//
// Reads are served from immutable views and never block: while an /add
// crawl is in flight, queries answer from the previous generation.
// Repeated reads are near-free — min-cut and TCB results are memoized
// per delegation chain across generations, retained generations share
// the survey's storage copy-on-write, and generation diffs examine only
// the chains that actually changed.
//
// The daemon's Internet is a transport-source composition, like
// dnssurvey's: -live crawls over real loopback sockets, -record keeps a
// byte-stable query log of every exchange (saved after the initial
// crawl and after every /add), and -replay serves the whole session —
// /add included — from a recorded log, so the daemon can monitor a
// snapshot of the past.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dnstrust"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
	"dnstrust/internal/verdict"
)

func main() {
	addr := flag.String("addr", ":8053", "HTTP listen address")
	names := flag.Int("names", 20000, "initial survey corpus size (paper: 593160)")
	seed := flag.Int64("seed", 1, "world generation seed")
	workers := flag.Int("workers", 0, "crawl parallelism (0 = GOMAXPROCS)")
	retain := flag.Int("retain", 8, "committed generations kept live for /generations, /diff, /watch")
	memoFile := flag.String("memo-file", "", "persist the query memo here and resume from it")
	snapshot := flag.String("snapshot", "", "persist the session snapshot here: restored at boot, saved after each crawl and on SIGTERM")
	shardName := flag.String("shard-name", "", "label this monitor as one fleet shard: snapshots and GET /snapshot exports carry the name")
	record := flag.String("record", "", "record every transport exchange into this query-log file (saved after each crawl)")
	replay := flag.String("replay", "", "serve the session from this recorded query log (strict: unrecorded queries fail)")
	live := flag.Bool("live", false, "boot the world's nameservers on loopback and crawl over real UDP/TCP sockets")
	maxTCB := flag.Int("max-tcb", 100, "/verdict flags names whose trusted computing base exceeds this many servers (-1 disables)")
	narrowCut := flag.Int("narrow-cut", 1, "/verdict flags names whose minimum delegation cut is at most this many servers (-1 disables)")
	flagOnly := flag.Bool("flag-only", false, "/verdict downgrades refusals to flags")
	verdictTTL := flag.Duration("verdict-ttl", time.Minute, "verdict cache TTL (generation commits invalidate changed names immediately)")
	flag.Parse()

	ctx := context.Background()
	opts := dnstrust.Options{Seed: *seed, Names: *names, Workers: *workers, Retain: *retain,
		MemoFile: *memoFile, SnapshotFile: *snapshot, ShardName: *shardName}
	var recLog *dnstrust.QueryLog
	if *record != "" {
		recLog = transport.NewLog()
		opts.RecordLog = recLog
	}
	if *replay != "" {
		lg := transport.NewLog()
		n, err := lg.LoadFile(*replay)
		if err != nil {
			log.Fatalf("dnsmonitord: %s: %v", *replay, err)
		}
		log.Printf("replaying %s: %d recorded questions", *replay, n)
		opts.ReplayLog = lg
	}

	log.Printf("generating world (seed %d, %d names) and crawling initial corpus...", *seed, *names)
	start := time.Now()
	world, err := dnstrust.NewWorld(opts)
	if err != nil {
		log.Fatalf("dnsmonitord: %v", err)
	}
	switch {
	case *live && *replay != "":
		// Strict replay never queries a terminal source; don't boot a
		// fleet destined only to be closed.
		log.Printf("dnsmonitord: -live ignored: strict -replay serves everything from the recording")
	case *live:
		lv, err := topology.StartLive(ctx, world.Registry)
		if err != nil {
			log.Fatalf("dnsmonitord: starting live servers: %v", err)
		}
		log.Printf("booted %d real DNS servers on loopback", lv.NumServers())
		opts.Source = transport.From(lv)
	}
	openStart := time.Now()
	m, err := dnstrust.OpenWorld(ctx, world, opts)
	if err != nil {
		log.Fatalf("dnsmonitord: %v", err)
	}
	defer m.Close()
	srv := &server{m: m, recLog: recLog, recPath: *record, snapPath: *snapshot}
	// The verdict cache is the same structure dnstrustd consults on its
	// serving hot path; here it backs /verdict. Commits advance it in
	// place (evicting only changed names), and /verdict on a never-seen
	// name queues a background crawl whose commit is persisted exactly
	// like a /add.
	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{
		Policy: verdict.Policy{MaxTCB: *maxTCB, NarrowCut: *narrowCut, FlagOnly: *flagOnly},
		TTL:    *verdictTTL,
		Add: func(ctx context.Context, names ...string) error {
			if _, err := m.Add(ctx, names...); err != nil {
				return err
			}
			srv.saveRecording()
			srv.saveSnapshot()
			return nil
		},
	})
	if err != nil {
		log.Fatalf("dnsmonitord: %v", err)
	}
	m.OnCommit(func(v *dnstrust.View) { cache.Advance(v.Survey()) })
	srv.cache = cache
	if v := m.At(); v.Generation() > 0 {
		// The snapshot restored the last committed generation; the
		// initial crawl is already paid for.
		var size int64
		if fi, err := os.Stat(*snapshot); err == nil {
			size = fi.Size()
		}
		log.Printf("snapshot: restored generation %d from %s (%d bytes, %.2fs, 0 transport queries)",
			v.Generation(), *snapshot, size, time.Since(openStart).Seconds())
		log.Printf("generation %d ready: %d names, %d nameservers (%.1fs); serving on %s",
			v.Generation(), v.NumNames(), v.Survey().Graph.NumHosts(), time.Since(start).Seconds(), *addr)
	} else {
		v, err := m.Add(ctx, m.World().Corpus...)
		if err != nil {
			m.Close()
			// A partial recording survives an aborted initial crawl, like
			// the query memo does.
			srv.saveRecording()
			log.Fatalf("dnsmonitord: initial crawl: %v", err)
		}
		log.Printf("generation %d ready: %d names, %d nameservers (%.1fs); serving on %s",
			v.Generation(), v.NumNames(), v.Survey().Graph.NumHosts(), time.Since(start).Seconds(), *addr)
		srv.saveRecording()
		srv.saveSnapshot()
	}

	// SIGTERM/SIGINT: save the snapshot (Close does, when configured)
	// and exit cleanly. The atomic save means a second signal mid-save
	// still leaves the previous snapshot loadable.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigc
		log.Printf("%v: saving session state and shutting down", sig)
		shutStart := time.Now()
		cache.Close()
		if err := m.Close(); err != nil {
			log.Printf("dnsmonitord: shutdown: %v", err)
			os.Exit(1)
		}
		if *snapshot != "" {
			var size int64
			if fi, err := os.Stat(*snapshot); err == nil {
				size = fi.Size()
			}
			log.Printf("snapshot: saved generation %d to %s (%d bytes, %.2fs)",
				m.Generation(), *snapshot, size, time.Since(shutStart).Seconds())
		}
		os.Exit(0)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /summary", srv.summary)
	mux.HandleFunc("GET /tcb", srv.tcb)
	mux.HandleFunc("GET /bottleneck", srv.bottleneck)
	mux.HandleFunc("GET /audit", srv.audit)
	mux.HandleFunc("GET /verdict", srv.verdict)
	mux.HandleFunc("GET /stats", srv.stats)
	mux.HandleFunc("GET /generations", srv.generations)
	mux.HandleFunc("GET /diff", srv.diff)
	mux.HandleFunc("GET /watch", srv.watch)
	mux.HandleFunc("POST /add", srv.add)
	mux.HandleFunc("POST /snapshot", srv.snapshot)
	mux.HandleFunc("GET /snapshot", srv.snapshotGet)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// server exposes one shared Monitor. Handlers read from At()'s immutable
// view; /add serializes through the Monitor itself.
type server struct {
	m *dnstrust.Monitor

	// cache serves /verdict; Monitor.OnCommit keeps it advancing.
	cache *verdict.Cache

	// recLog/recPath persist the session's query recording; recMu
	// serializes saves from concurrent /add handlers.
	recLog  *dnstrust.QueryLog
	recPath string
	recMu   sync.Mutex

	// snapPath persists the session snapshot ("" = off); snapMu
	// serializes saves so concurrent /add and /snapshot handlers never
	// race on the same temp file.
	snapPath string
	snapMu   sync.Mutex
}

// saveRecording writes the query log to disk, when recording.
func (s *server) saveRecording() {
	if s.recLog == nil {
		return
	}
	s.recMu.Lock()
	defer s.recMu.Unlock()
	//lint:allow locksafety recMu serializes concurrent saves of the same file; the query path never takes it
	if n, err := s.recLog.SaveFile(s.recPath); err != nil {
		log.Printf("dnsmonitord: recording not saved: %v", err)
	} else {
		log.Printf("recorded %d questions to %s", n, s.recPath)
	}
}

// saveSnapshot persists the session snapshot after a committed crawl,
// when configured, logging generation, size, and timing.
func (s *server) saveSnapshot() {
	if s.snapPath == "" {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	//lint:allow locksafety snapMu exists solely to serialize snapshot writers to one file; no reader ever takes it
	n, err := s.m.SaveSnapshot(s.snapPath)
	if err != nil {
		log.Printf("dnsmonitord: snapshot not saved: %v", err)
		return
	}
	log.Printf("snapshot: saved generation %d to %s (%d bytes, %.2fs)",
		s.m.Generation(), s.snapPath, n, time.Since(start).Seconds())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// nameParam extracts ?name= or fails the request.
func nameParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?name= parameter"))
		return "", false
	}
	return name, true
}

func (s *server) summary(w http.ResponseWriter, r *http.Request) {
	v := s.m.At()
	sum := v.Summary()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":         v.Generation(),
		"names":              sum.Names,
		"servers":            sum.Servers,
		"vulnerable_servers": sum.VulnerableServers,
		"affected_names":     sum.AffectedNames,
		"tcb_mean":           sum.TCB.Mean(),
		"tcb_median":         sum.TCB.Median(),
		"tcb_max":            sum.TCB.Max(),
		"direct_mean":        sum.DirectMean,
		"owned_mean":         sum.OwnedMean,
	})
}

func (s *server) tcb(w http.ResponseWriter, r *http.Request) {
	name, ok := nameParam(w, r)
	if !ok {
		return
	}
	v := s.m.At()
	tcb, err := v.TCB(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": v.Generation(),
		"name":       name,
		"tcb_size":   len(tcb),
		"tcb":        tcb,
	})
}

func (s *server) bottleneck(w http.ResponseWriter, r *http.Request) {
	name, ok := nameParam(w, r)
	if !ok {
		return
	}
	v := s.m.At()
	res, err := v.Bottleneck(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":  v.Generation(),
		"name":        name,
		"cut":         res.Cut,
		"cut_size":    res.Size,
		"safe_in_cut": res.SafeInCut,
		"vuln_in_cut": res.VulnInCut,
	})
}

func (s *server) audit(w http.ResponseWriter, r *http.Request) {
	name, ok := nameParam(w, r)
	if !ok {
		return
	}
	v := s.m.At()
	findings, err := v.Audit(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	out := make([]map[string]string, 0, len(findings))
	for _, f := range findings {
		out = append(out, map[string]string{
			"severity": f.Severity.String(),
			"kind":     f.Kind.String(),
			"finding":  f.String(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": v.Generation(),
		"name":       name,
		"findings":   out,
	})
}

// verdict serves the per-name policy verdict from the shared cache. A
// hit costs two atomic loads; a never-seen name answers provisionally
// (flagged) and queues a background crawl — poll again after it commits
// for the real verdict.
func (s *server) verdict(w http.ResponseWriter, r *http.Request) {
	name, ok := nameParam(w, r)
	if !ok {
		return
	}
	v := s.cache.Lookup(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"name":        v.Name,
		"level":       v.Level.String(),
		"reasons":     v.Reasons.Strings(),
		"generation":  v.Generation,
		"tcb_size":    v.TCBSize,
		"cut":         v.Cut,
		"safe_in_cut": v.SafeInCut,
		"provisional": v.Provisional,
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	v := s.m.At()
	st := v.Survey().Stats
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":        v.Generation(),
		"names":             v.NumNames(),
		"servers":           v.Survey().Graph.NumHosts(),
		"zones":             v.Survey().Graph.NumZones(),
		"chains":            v.Survey().Graph.NumChains(),
		"transport_queries": s.m.Queries(),
		"memo_hits":         st.Walker.MemoHits,
		"shared_walks":      st.Walker.SharedWalks,
		"walk_seconds":      st.WalkTime.Seconds(),
		"build_seconds":     st.BuildTime.Seconds(),
		"verdict_cache":     verdictStats(s.cache.Stats()),
	})
}

// verdictStats flattens cache counters for the /stats payload.
func verdictStats(cs verdict.Stats) map[string]any {
	return map[string]any{
		"size":        cs.Size,
		"generation":  cs.Generation,
		"hits":        cs.Hits,
		"misses":      cs.Misses,
		"provisional": cs.Provisional,
		"evicted":     cs.Evicted,
		"flushes":     cs.Flushes,
		"stale_skips": cs.StaleSkips,
		"enqueued":    cs.Enqueued,
		"dropped":     cs.Dropped,
	}
}

// genParam parses an int64 query parameter, with a default when absent.
func genParam(r *http.Request, key string, def int64) (int64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad ?%s=%q: %w", key, raw, err)
	}
	return v, nil
}

func (s *server) generations(w http.ResponseWriter, r *http.Request) {
	tl := s.m.Timeline()
	out := make([]map[string]any, 0, len(tl))
	for _, v := range tl {
		g := v.Survey().Graph
		out = append(out, map[string]any{
			"generation": v.Generation(),
			"names":      v.NumNames(),
			"servers":    g.NumHosts(),
			"zones":      g.NumZones(),
			"chains":     g.NumChains(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"retained":    len(tl),
		"generations": out,
	})
}

// timelineRange resolves ?from= and ?to= against the retained timeline
// (defaults: oldest retained, latest committed).
func (s *server) timelineRange(r *http.Request) (from, to int64, err error) {
	tl := s.m.Timeline()
	if len(tl) == 0 {
		return 0, 0, errors.New("no generations retained")
	}
	from, err = genParam(r, "from", tl[0].Generation())
	if err != nil {
		return 0, 0, err
	}
	to, err = genParam(r, "to", tl[len(tl)-1].Generation())
	return from, to, err
}

func (s *server) diff(w http.ResponseWriter, r *http.Request) {
	from, to, err := s.timelineRange(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if from > to {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("from=%d exceeds to=%d", from, to))
		return
	}
	d, err := s.m.BetweenContext(r.Context(), from, to)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// watch flags drifting names: TCB grown by at least ?grow= hosts (default
// 1) since generation ?since= (default the oldest retained), plus names
// whose TCB crossed the absolute ?limit= threshold between the
// generations.
func (s *server) watch(w http.ResponseWriter, r *http.Request) {
	tl := s.m.Timeline()
	if len(tl) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no generations retained"))
		return
	}
	to := tl[len(tl)-1].Generation()
	since, err := genParam(r, "since", tl[0].Generation())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	grow, err := genParam(r, "grow", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	limit, err := genParam(r, "limit", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if since > to {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("since=%d exceeds the latest generation %d", since, to))
		return
	}
	d, err := s.m.BetweenContext(r.Context(), since, to)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	grew := make([]map[string]any, 0)
	for _, c := range d.Grew(int(grow)) {
		grew = append(grew, map[string]any{
			"name": c.Name, "old_tcb": c.OldTCB, "new_tcb": c.NewTCB, "growth": c.Growth(),
			"tcb_added": c.TCBAdded,
		})
	}
	crossed := make([]map[string]any, 0)
	if limit > 0 {
		for _, c := range d.Changed {
			if int64(c.OldTCB) <= limit && int64(c.NewTCB) > limit {
				crossed = append(crossed, map[string]any{
					"name": c.Name, "old_tcb": c.OldTCB, "new_tcb": c.NewTCB, "limit": limit,
				})
			}
		}
	}
	// Zombie dependencies never arise within one monitored session (zone
	// cuts are first-observation-wins immutable); they surface when
	// diffing independent recordings — dnssurvey -diff / DiffLogs — so
	// the watch response does not carry a perpetually empty field.
	writeJSON(w, http.StatusOK, map[string]any{
		"since":         since,
		"to":            to,
		"min_growth":    grow,
		"grew":          grew,
		"crossed_limit": crossed,
	})
}

func (s *server) add(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	names := strings.Fields(string(body))
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty body: send whitespace-separated names"))
		return
	}
	prev := s.m.At()
	prevQueries := s.m.Queries()
	start := time.Now()
	v, err := s.m.Add(r.Context(), names...)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("add failed (previous generation still serving): %w", err))
		return
	}
	s.saveRecording()
	s.saveSnapshot()
	perName := make(map[string]any, len(names))
	for _, n := range names {
		if sz := v.Survey().Graph.TCBSize(n); sz >= 0 {
			perName[n] = sz
		} else if ferr, ok := v.Survey().Failed[n]; ok {
			perName[n] = "failed: " + ferr.Error()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":        v.Generation(),
		"added":             len(names),
		"names_total":       v.NumNames(),
		"new_names":         v.NumNames() - prev.NumNames(),
		"new_servers":       v.Survey().Graph.NumHosts() - prev.Survey().Graph.NumHosts(),
		"transport_queries": s.m.Queries() - prevQueries,
		"seconds":           time.Since(start).Seconds(),
		"tcb_sizes":         perName,
	})
}

// snapshotGet streams the session snapshot to a fleet coordinator
// (GET /snapshot). The committed generation doubles as the ETag, so a
// coordinator's conditional refetch of an unchanged shard costs one
// request and zero snapshot bytes.
func (s *server) snapshotGet(w http.ResponseWriter, r *http.Request) {
	gen := s.m.Generation()
	etag := fmt.Sprintf(`"%d"`, gen)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	start := time.Now()
	cw := &countingWriter{w: w}
	if err := s.m.WriteSnapshot(cw); err != nil {
		// The status line is already out; log and cut the stream short
		// (the coordinator sees a truncated container and retries).
		log.Printf("dnsmonitord: snapshot not served: %v", err)
		return
	}
	log.Printf("snapshot: served generation %d (%d bytes, %.2fs)",
		gen, cw.n, time.Since(start).Seconds())
}

// countingWriter sizes the streamed snapshot for the serve log line.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// snapshot saves the session snapshot on demand (POST /snapshot).
func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapPath == "" {
		writeErr(w, http.StatusBadRequest, errors.New("daemon started without -snapshot"))
		return
	}
	s.snapMu.Lock()
	start := time.Now()
	//lint:allow locksafety snapMu exists solely to serialize snapshot writers to one file; no reader ever takes it
	n, err := s.m.SaveSnapshot(s.snapPath)
	elapsed := time.Since(start)
	s.snapMu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	log.Printf("snapshot: saved generation %d to %s (%d bytes, %.2fs)",
		s.m.Generation(), s.snapPath, n, elapsed.Seconds())
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": s.m.Generation(),
		"bytes":      n,
		"seconds":    elapsed.Seconds(),
		"path":       s.snapPath,
	})
}
