// Command benchdiff compares two BENCH_N.json reports (cmd/dnsbench
// output) and fails loudly when a gated hot path regressed. Gated
// benchmarks are the CPU-bound, per-name-scaled ones: IncrementalBuild
// (graph-build ns/name), ReplayCrawl (ns/name served from a recorded
// query log), TimelineDiff (ns/name to diff two generations after a
// small Add — the chain-id shortcut must keep this near-constant, so a
// regression here means the diff started scanning the corpus), and
// SnapshotColdStart (ns/name to restore a monitor from a binary
// snapshot, and the replay-rebuild baseline it is compared against —
// the snapshot-load gate is what keeps restarts second-scale),
// VerdictLookup (ns/name of the serving-path verdict cache hit under
// generation churn), ProxyServe (ns/name of the full proxy handler:
// verdict plus iterative upstream resolution), and FleetMerge (ns/name
// of the coordinator's id-remapping union of per-shard snapshot epochs
// into one fleet view). All other shared
// benchmarks are reported for information only. Benchmarks absent from
// either report are skipped, so adding a new gated benchmark never
// breaks CI against older baselines.
//
// Beyond the relative gate, the new report alone is held to absolute
// floors: VerdictLookup must sustain -min-verdict-qps lookups/s
// (default 100000 — the serving-path acceptance claim), even when the
// old baseline predates the benchmark.
//
// Usage:
//
//	benchdiff -old BENCH_2.json -new /tmp/bench-ci.json [-max-regress 0.25]
//	          [-min-verdict-qps 100000]
//
// Exit status: 0 when every gated benchmark is within the allowed
// regression and every floor holds, 1 otherwise, 2 on usage/IO errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result mirrors cmd/dnsbench's per-benchmark schema.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report mirrors cmd/dnsbench's file schema.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Names      int      `json:"names"`
	Seed       int64    `json:"seed"`
	RTT        string   `json:"rtt"`
	Benchmarks []Result `json:"benchmarks"`
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// gated reports whether a benchmark participates in the regression gate.
func gated(name string) bool {
	return strings.HasPrefix(name, "IncrementalBuild/") ||
		strings.HasPrefix(name, "ReplayCrawl/") ||
		strings.HasPrefix(name, "TimelineDiff/") ||
		strings.HasPrefix(name, "SnapshotColdStart/") ||
		strings.HasPrefix(name, "VerdictLookup/") ||
		strings.HasPrefix(name, "ProxyServe/") ||
		strings.HasPrefix(name, "FleetMerge/")
}

// buildScale extracts the per-op name count from a gated benchmark name
// ("IncrementalBuild/names=100000", "ReplayCrawl/names=1200").
func buildScale(name string) (float64, bool) {
	i := strings.LastIndex(name, "names=")
	if i < 0 {
		return 0, false
	}
	var n float64
	if _, err := fmt.Sscanf(name[i:], "names=%f", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

func main() {
	oldPath := flag.String("old", "", "previous BENCH_N.json (the committed baseline)")
	newPath := flag.String("new", "", "fresh BENCH json to check")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional regression in build ns/name")
	minVerdictQPS := flag.Float64("min-verdict-qps", 100_000, "absolute floor on VerdictLookup lookups/s in the new report (0 disables)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldB, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newB, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newB))
	for name := range newB {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	gatedSeen := 0
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		b := newB[name]
		o, ok := oldB[b.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		delta := (b.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := ""
		if gated(b.Name) {
			gatedSeen++
			scale, ok := buildScale(b.Name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchdiff: cannot parse scale from %q\n", b.Name)
				os.Exit(2)
			}
			oldPerName := o.NsPerOp / scale
			newPerName := b.NsPerOp / scale
			mark = " [gate]"
			if newPerName > oldPerName*(1+*maxRegress) {
				mark = " [FAIL]"
				failed++
				fmt.Fprintf(os.Stderr,
					"benchdiff: %s regressed: %.1f -> %.1f build ns/name (+%.0f%%, limit +%.0f%%)\n",
					b.Name, oldPerName, newPerName, 100*delta, 100**maxRegress)
			}
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%%%s\n", b.Name, o.NsPerOp, b.NsPerOp, 100*delta, mark)
	}
	// Absolute floors run over the new report alone, so they hold even
	// when the committed baseline predates the benchmark (the skip rule
	// above only covers the relative gate).
	floors := 0
	if *minVerdictQPS > 0 {
		for _, name := range names {
			if !strings.HasPrefix(name, "VerdictLookup/") {
				continue
			}
			floors++
			qps := newB[name].Extra["lookups/s"]
			if qps < *minVerdictQPS {
				failed++
				fmt.Fprintf(os.Stderr, "benchdiff: %s below floor: %.0f lookups/s, need >= %.0f\n",
					name, qps, *minVerdictQPS)
			} else {
				fmt.Printf("floor passed: %s sustained %.0f lookups/s (floor %.0f)\n",
					name, qps, *minVerdictQPS)
			}
		}
	}
	if gatedSeen == 0 && floors == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no gated benchmarks shared between the reports — nothing gated")
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Printf("gate passed: %d gated benchmark(s) within +%.0f%% ns/name, %d floor(s) held\n",
		gatedSeen, 100**maxRegress, floors)
}
