// Command dnsgraph prints the delegation graph of a name: its trusted
// computing base, its zone dependency structure, or Graphviz DOT suitable
// for rendering Figure 1.
//
// Usage:
//
//	dnsgraph -world figure1 -name www.cs.cornell.edu -format dot
//	dnsgraph -world gen -names 5000 -name <corpus name> -format tcb
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func main() {
	world := flag.String("world", "figure1", "world: figure1 | fbi | ukraine | gen")
	name := flag.String("name", "", "name to graph (defaults to the world's signature name)")
	format := flag.String("format", "dot", "output: dot | tcb | zones")
	names := flag.Int("names", 2000, "corpus size for -world gen")
	seed := flag.Int64("seed", 1, "seed for -world gen")
	flag.Parse()

	reg, defName, err := buildWorld(*world, *names, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsgraph: %v\n", err)
		os.Exit(1)
	}
	if *name == "" {
		*name = defName
	}

	r, err := reg.Resolver(nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsgraph: %v\n", err)
		os.Exit(1)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(context.Background(), *name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsgraph: walking %s: %v\n", *name, err)
		os.Exit(1)
	}
	g := crawler.FromSnapshot(w.Snapshot(map[string][]string{*name: chain}, nil)).Graph

	switch *format {
	case "dot":
		dot, err := g.DOT(*name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsgraph: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(dot)
	case "tcb":
		printTCB(g, *name)
	case "zones":
		printZones(g, *name)
	default:
		fmt.Fprintf(os.Stderr, "dnsgraph: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func buildWorld(kind string, names int, seed int64) (*topology.Registry, string, error) {
	switch kind {
	case "figure1":
		return topology.Figure1World(), "www.cs.cornell.edu", nil
	case "fbi":
		return topology.FBIWorld(), "www.fbi.gov", nil
	case "ukraine":
		return topology.UkraineWorld(), "www.rkc.lviv.ua", nil
	case "gen":
		w, err := topology.Generate(topology.GenParams{Seed: seed, Names: names})
		if err != nil {
			return nil, "", err
		}
		return w.Registry, w.Corpus[0], nil
	default:
		return nil, "", fmt.Errorf("unknown world %q", kind)
	}
}

func printTCB(g *core.Graph, name string) {
	tcb, err := g.TCB(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsgraph: %v\n", err)
		os.Exit(1)
	}
	owned, external, _ := g.OwnedServers(name)
	fmt.Printf("TCB of %s: %d nameservers (%d owner-run, %d external)\n",
		name, len(tcb), len(owned), len(external))
	for _, h := range tcb {
		marker := " "
		for _, o := range owned {
			if o == h {
				marker = "*"
			}
		}
		fmt.Printf("  %s %s\n", marker, h)
	}
}

func printZones(g *core.Graph, name string) {
	ids, err := g.ReachableZoneIDs(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsgraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("delegation graph of %s: %d zones\n", name, len(ids))
	for _, z := range ids {
		apex := g.Zones()[z]
		fmt.Printf("  %-30s %d nameservers\n", apex+".", len(g.ZoneNS(apex)))
	}
}
