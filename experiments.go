package dnstrust

import (
	"context"
	"fmt"
	"io"
	"sort"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
	"dnstrust/internal/hijack"
	"dnstrust/internal/report"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

// Comparison re-exports the paper-vs-measured row type.
type Comparison = report.Comparison

// Experiment regenerates one figure or in-text table of the paper.
type Experiment struct {
	// ID is the paper's identifier ("Figure 2", "T-C").
	ID string
	// Title describes what the experiment measures.
	Title string
	// Run prints the regenerated series to w and returns the
	// paper-vs-measured comparison rows. It reads from an immutable
	// View, so experiments may run while a Monitor's next Add is in
	// flight.
	Run func(ctx context.Context, v *View, w io.Writer) ([]Comparison, error)
}

// Experiments returns every reproduction experiment, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "Figure 1", Title: "Delegation graph of www.cs.cornell.edu", Run: runFigure1},
		{ID: "Figure 2", Title: "CDF of TCB size (all names, top 500)", Run: runFigure2},
		{ID: "Figure 3", Title: "Average TCB size for gTLD names", Run: runFigure3},
		{ID: "Figure 4", Title: "Average TCB size for worst ccTLD names", Run: runFigure4},
		{ID: "Figure 5", Title: "CDF of vulnerable nameservers in TCB", Run: runFigure5},
		{ID: "Figure 6", Title: "Distribution of non-vulnerable TCB fraction", Run: runFigure6},
		{ID: "Figure 7", Title: "CDF of safe bottleneck nameservers (min-cut)", Run: runFigure7},
		{ID: "Figure 8", Title: "Names controlled by nameservers (rank)", Run: runFigure8},
		{ID: "Figure 9", Title: "Names controlled by .edu/.org nameservers", Run: runFigure9},
		{ID: "T-A", Title: "TCB summary statistics (§3.1)", Run: runTableA},
		{ID: "T-B", Title: "Vulnerability poisoning (§3.2)", Run: runTableB},
		{ID: "T-C", Title: "The fbi.gov transitive hijack (§3.2)", Run: runTableC},
		{ID: "T-D", Title: "The www.rkc.lviv.ua worst case (§3.1)", Run: runTableD},
		{ID: "Drift", Title: "Longitudinal TCB drift: a flaky dependency resurfaces", Run: runDrift},
	}
}

// RunAll executes every experiment against the view, printing each
// regenerated table/series to w, and returns all comparison rows.
// Cancellation is honored between experiments: the rows of every
// experiment completed so far are returned alongside an error wrapping
// ctx's cause (context.Canceled or context.DeadlineExceeded).
func RunAll(ctx context.Context, v *View, w io.Writer) ([]Comparison, error) {
	var all []Comparison
	for _, e := range Experiments() {
		if err := ctx.Err(); err != nil {
			return all, fmt.Errorf("dnstrust: run aborted before %s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "\n===== %s: %s =====\n", e.ID, e.Title)
		rows, err := e.Run(ctx, v, w)
		if err != nil {
			return all, fmt.Errorf("%s: %w", e.ID, err)
		}
		all = append(all, rows...)
	}
	fmt.Fprintf(w, "\n===== Paper vs measured =====\n")
	if err := report.ComparisonTable("", all).Write(w); err != nil {
		return all, err
	}
	return all, nil
}

// within reports whether x lies in [lo, hi].
func within(x, lo, hi float64) bool { return x >= lo && x <= hi }

// runFigure1 reproduces the qualitative delegation graph of Figure 1 on
// the hand-built Cornell world (independent of the surveyed corpus).
func runFigure1(ctx context.Context, _ *View, w io.Writer) ([]Comparison, error) {
	reg := topology.Figure1World()
	r, err := reg.Resolver(nil)
	if err != nil {
		return nil, err
	}
	walker := resolver.NewWalker(r)
	chain, err := walker.WalkName(ctx, "www.cs.cornell.edu")
	if err != nil {
		return nil, err
	}
	survey := surveyFromWalk(walker, "www.cs.cornell.edu", chain)
	g := survey.Graph

	tcb, err := g.TCB("www.cs.cornell.edu")
	if err != nil {
		return nil, err
	}
	zones, err := g.ReachableZoneIDs("www.cs.cornell.edu")
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Figure 1 world: zones in the delegation graph", "zone", "nameservers")
	for _, z := range zones {
		apex := g.Zones()[z]
		tb.AddRow(apex, len(g.ZoneNS(apex)))
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "TCB of www.cs.cornell.edu: %d servers\n", len(tcb))

	hasUmich := false
	for _, h := range tcb {
		if dnsname.IsSubdomain(h, "umich.edu") {
			hasUmich = true
		}
	}
	owned, _, err := g.OwnedServers("www.cs.cornell.edu")
	if err != nil {
		return nil, err
	}
	return []Comparison{
		{Experiment: "Figure 1", Quantity: "indirect umich.edu dependency",
			Paper: "present", Measured: fmt.Sprintf("%v", hasUmich), Holds: hasUmich},
		{Experiment: "Figure 1", Quantity: "TCB beyond TLD servers",
			Paper: "20 nameservers", Measured: fmt.Sprintf("%d", len(tcb)-17),
			Holds: within(float64(len(tcb)-17), 12, 30)},
		{Experiment: "Figure 1", Quantity: "cornell.edu-administered servers",
			Paper: "9", Measured: fmt.Sprintf("%d", len(owned)), Holds: len(owned) == 9},
	}, nil
}

// surveyFromWalk packages a single hand-built walk as a Survey (no
// version probing: scenario worlds carry their banners separately).
func surveyFromWalk(w *resolver.Walker, name string, chain []string) *crawler.Survey {
	snap := w.Snapshot(map[string][]string{name: chain}, nil)
	return crawler.FromSnapshot(snap)
}

func runFigure2(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	all := analysis.NewCDF(analysis.TCBSizes(v.Survey(), v.survey.Names))
	pop := analysis.NewCDF(analysis.TCBSizes(v.Survey(), v.world.Popular))

	tb := report.NewTable("Figure 2: CDF of TCB size", "size", "all names %", "top 500 %")
	for _, x := range []int{10, 20, 26, 46, 69, 100, 150, 200, 300, 400, 500} {
		tb.AddRow(x, 100*all.FracAtMost(x), 100*pop.FracAtMost(x))
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "all: %s\npopular: %s\n", all, pop)

	return []Comparison{
		{Experiment: "Figure 2", Quantity: "median TCB size",
			Paper: "26", Measured: fmt.Sprintf("%d", all.Median()),
			Holds: within(float64(all.Median()), 15, 45)},
		{Experiment: "Figure 2", Quantity: "mean TCB size",
			Paper: "46", Measured: fmt.Sprintf("%.1f", all.Mean()),
			Holds: within(all.Mean(), 30, 85)},
		{Experiment: "Figure 2", Quantity: "names with TCB > 200",
			Paper: "6.5%", Measured: fmt.Sprintf("%.1f%%", 100*all.FracAbove(200)),
			Holds: within(100*all.FracAbove(200), 2, 13)},
		{Experiment: "Figure 2", Quantity: "top-500 mean TCB",
			Paper: "69 (larger than all)", Measured: fmt.Sprintf("%.1f", pop.Mean()),
			Holds: pop.Mean() > all.Mean()},
		{Experiment: "Figure 2", Quantity: "top-500 with TCB > 200",
			Paper: "15% (larger share)", Measured: fmt.Sprintf("%.1f%%", 100*pop.FracAbove(200)),
			Holds: pop.FracAbove(200) >= all.FracAbove(200)},
	}, nil
}

func runFigure3(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	avgs := analysis.FilterKind(analysis.TLDAverages(v.Survey(), v.survey.Names), dnsname.KindGeneric)
	tb := report.NewTable("Figure 3: average TCB size per gTLD (descending)", "tld", "names", "mean TCB")
	rank := map[string]int{}
	for i, a := range avgs {
		tb.AddRow(a.TLD, a.Names, a.MeanTCB)
		rank[a.TLD] = i
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	macro := analysis.MacroAverage(avgs)
	fmt.Fprintf(w, "gTLD macro average: %.1f\n", macro)

	aeroIntTop := rank["aero"] <= 2 && rank["int"] <= 2
	comBottom := rank["com"] >= len(avgs)-4
	return []Comparison{
		{Experiment: "Figure 3", Quantity: "aero and int largest",
			Paper: "aero, int >> others", Measured: fmt.Sprintf("aero rank %d, int rank %d", rank["aero"]+1, rank["int"]+1),
			Holds: aeroIntTop},
		{Experiment: "Figure 3", Quantity: "com among the smallest",
			Paper: "com near bottom", Measured: fmt.Sprintf("rank %d of %d", rank["com"]+1, len(avgs)),
			Holds: comBottom},
		{Experiment: "Figure 3", Quantity: "gTLD macro average",
			Paper: "87", Measured: fmt.Sprintf("%.1f", macro),
			Holds: within(macro, 40, 160)},
	}, nil
}

func runFigure4(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	ccAvgs := analysis.FilterKind(analysis.TLDAverages(v.Survey(), v.survey.Names), dnsname.KindCountry)
	show := ccAvgs
	if len(show) > 15 {
		show = show[:15]
	}
	tb := report.NewTable("Figure 4: average TCB size, 15 worst ccTLDs", "tld", "names", "mean TCB")
	for _, a := range show {
		tb.AddRow(a.TLD, a.Names, a.MeanTCB)
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	ccMacro := analysis.MacroAverage(ccAvgs)
	gMacro := analysis.MacroAverage(analysis.FilterKind(analysis.TLDAverages(v.Survey(), v.survey.Names), dnsname.KindGeneric))
	fmt.Fprintf(w, "ccTLD macro average: %.1f (gTLD: %.1f)\n", ccMacro, gMacro)

	rank := map[string]int{}
	for i, a := range ccAvgs {
		rank[a.TLD] = i
	}
	pathologicalTop := true
	for _, bad := range []string{"ua", "by", "pl", "it"} {
		if rank[bad] > 14 {
			pathologicalTop = false
		}
	}
	return []Comparison{
		{Experiment: "Figure 4", Quantity: "ua most vulnerable ccTLD",
			Paper: "rank 1", Measured: fmt.Sprintf("rank %d", rank["ua"]+1),
			Holds: rank["ua"] <= 2},
		{Experiment: "Figure 4", Quantity: "paper's worst ccTLDs rank in top 15",
			Paper: "ua by sm mt my pl it ...", Measured: fmt.Sprintf("ua=%d by=%d pl=%d it=%d", rank["ua"]+1, rank["by"]+1, rank["pl"]+1, rank["it"]+1),
			Holds: pathologicalTop},
		{Experiment: "Figure 4", Quantity: "ccTLD macro vs gTLD macro",
			Paper: "209 vs 87", Measured: fmt.Sprintf("%.1f vs %.1f", ccMacro, gMacro),
			Holds: ccMacro > gMacro},
	}, nil
}

func runFigure5(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	all := analysis.NewCDF(analysis.VulnInTCBMemo(v.Survey(), v.survey.Names, v.memo))
	pop := analysis.NewCDF(analysis.VulnInTCBMemo(v.Survey(), v.world.Popular, v.memo))

	tb := report.NewTable("Figure 5: CDF of vulnerable nameservers in TCB", "count", "all names %", "top 500 %")
	for _, x := range []int{0, 1, 2, 4, 8, 16, 32, 64, 100} {
		tb.AddRow(x, 100*all.FracAtMost(x), 100*pop.FracAtMost(x))
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	affected := 100 * (1 - all.FracAtMost(0))
	fmt.Fprintf(w, "names with >=1 vulnerable server: %.1f%% (mean %.1f per TCB)\n", affected, all.Mean())

	return []Comparison{
		{Experiment: "Figure 5", Quantity: "names depending on >=1 vulnerable server",
			Paper: "45%", Measured: fmt.Sprintf("%.1f%%", affected),
			Holds: within(affected, 25, 70)},
		{Experiment: "Figure 5", Quantity: "mean vulnerable servers per TCB",
			Paper: "4.1", Measured: fmt.Sprintf("%.1f", all.Mean()),
			Holds: within(all.Mean(), 1, 12)},
		{Experiment: "Figure 5", Quantity: "top-500 mean vulnerable servers",
			Paper: "7.6 (higher)", Measured: fmt.Sprintf("%.1f", pop.Mean()),
			Holds: pop.Mean() >= all.Mean()},
	}, nil
}

func runFigure6(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	safety := analysis.TCBSafetyMemo(v.Survey(), v.survey.Names, v.memo)
	pts := analysis.SafetyDistribution(safety, 12)
	tb := report.NewTable("Figure 6: % non-vulnerable nodes in TCB (names sorted ascending)", "name rank %", "safety %")
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.1f", p.RankPct), p.Safety)
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	fullyVuln := 0
	for _, v := range safety {
		if v == 0 {
			fullyVuln++
		}
	}
	fmt.Fprintf(w, "names with fully vulnerable TCB: %d\n", fullyVuln)

	return []Comparison{
		{Experiment: "Figure 6", Quantity: "names with entirely vulnerable TCB",
			Paper: "a few (.ws names)", Measured: fmt.Sprintf("%d", fullyVuln),
			Holds: fullyVuln > 0},
	}, nil
}

func runFigure7(ctx context.Context, v *View, w io.Writer) ([]Comparison, error) {
	stats, err := v.Bottlenecks(ctx)
	if err != nil {
		return nil, err
	}
	safe := analysis.NewCDF(stats.SafeCounts)
	cuts := analysis.NewCDF(stats.CutSizes)

	tb := report.NewTable("Figure 7: CDF of safe bottleneck nameservers", "safe servers in cut", "names %")
	for _, x := range []int{0, 1, 2, 3, 4, 6, 8, 10} {
		tb.AddRow(x, 100*safe.FracAtMost(x))
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	fullyVulnPct := 100 * float64(stats.FullyVulnerable) / float64(stats.Names)
	oneSafePct := 100 * float64(stats.OneSafe) / float64(stats.Names)
	fmt.Fprintf(w, "fully vulnerable min-cut: %.1f%%; exactly one safe: %.1f%%; mean cut size %.2f\n",
		fullyVulnPct, oneSafePct, cuts.Mean())

	return []Comparison{
		{Experiment: "Figure 7", Quantity: "names with fully vulnerable min-cut",
			Paper: "30%", Measured: fmt.Sprintf("%.1f%%", fullyVulnPct),
			Holds: within(fullyVulnPct, 10, 55)},
		{Experiment: "Figure 7", Quantity: "names with exactly one safe bottleneck",
			Paper: "10%", Measured: fmt.Sprintf("%.1f%%", oneSafePct),
			Holds: within(oneSafePct, 1.5, 35)},
		{Experiment: "Figure 7", Quantity: "mean min-cut size",
			Paper: "2.5", Measured: fmt.Sprintf("%.2f", cuts.Mean()),
			Holds: within(cuts.Mean(), 1.5, 5)},
	}, nil
}

func runFigure8(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	ctrl := analysis.Control(v.Survey(), v.survey.Names)
	tb := report.NewTable("Figure 8: names controlled by nameservers (rank, log-spaced)", "rank", "names (all)", "vulnerable?")
	for _, p := range analysis.RankCurve(ctrl.Ranked, 16) {
		tb.AddRow(p.Rank, p.Names, ctrl.Ranked[p.Rank-1].Vulnerable)
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	big := ctrl.ControllingAtLeast(0.10)
	vulnBig := 0
	gtldBig := 0
	for _, e := range big {
		if e.Vulnerable {
			vulnBig++
		}
		if dnsname.IsSubdomain(e.Host, "gtld-servers.net") || dnsname.IsSubdomain(e.Host, "nstld.com") {
			gtldBig++
		}
	}
	fmt.Fprintf(w, "mean names/server %.1f, median %d; servers controlling >10%%: %d (%d gTLD infra, %d vulnerable)\n",
		ctrl.MeanControl(), ctrl.MedianControl(), len(big), gtldBig, vulnBig)

	return []Comparison{
		{Experiment: "Figure 8", Quantity: "heavy-tailed control (mean >> median)",
			Paper: "mean 166, median 4", Measured: fmt.Sprintf("mean %.1f, median %d", ctrl.MeanControl(), ctrl.MedianControl()),
			Holds: ctrl.MeanControl() > 5*float64(ctrl.MedianControl())},
		{Experiment: "Figure 8", Quantity: "high-leverage servers (>10% of names)",
			Paper: "~125 (30 gTLD)", Measured: fmt.Sprintf("%d (%d gTLD infra)", len(big), gtldBig),
			Holds: len(big) >= 19 && gtldBig >= 13},
		{Experiment: "Figure 8", Quantity: "vulnerable servers among high-leverage set",
			Paper: "~12 of 125", Measured: fmt.Sprintf("%d of %d", vulnBig, len(big)),
			Holds: true}, // reported; presence depends on seed
	}, nil
}

func runFigure9(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	ctrl := analysis.Control(v.Survey(), v.survey.Names)
	edu := ctrl.FilterHostTLD("edu")
	org := ctrl.FilterHostTLD("org")
	tb := report.NewTable("Figure 9: names controlled by .edu and .org nameservers (rank)", "rank", "edu names", "org names")
	eduPts := analysis.RankCurve(edu, 12)
	orgPts := analysis.RankCurve(org, 12)
	for i := 0; i < len(eduPts) || i < len(orgPts); i++ {
		var e, o any = "", ""
		var r any = ""
		if i < len(eduPts) {
			e, r = eduPts[i].Names, eduPts[i].Rank
		}
		if i < len(orgPts) {
			o = orgPts[i].Names
			if r == "" {
				r = orgPts[i].Rank
			}
		}
		tb.AddRow(r, e, o)
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	// Count edu servers controlling a disproportionate slice (>2% here:
	// the corpus underweights edu relative to the real web).
	eduHeavy := 0
	for _, e := range edu {
		if e.Names > ctrl.TotalNames/50 {
			eduHeavy++
		}
	}
	fmt.Fprintf(w, "edu servers: %d (heavy: %d); org servers: %d\n", len(edu), eduHeavy, len(org))

	return []Comparison{
		{Experiment: "Figure 9", Quantity: "educational servers control large name populations",
			Paper: "25 critical edu servers", Measured: fmt.Sprintf("%d edu servers above 2%% of corpus", eduHeavy),
			Holds: eduHeavy > 0},
		{Experiment: "Figure 9", Quantity: "edu/org control is heavy-tailed",
			Paper: "log-log spread", Measured: fmt.Sprintf("top edu %d vs median-ish %d", firstNames(edu), midNames(edu)),
			Holds: len(edu) > 10 && firstNames(edu) > 10*midNames(edu)},
	}, nil
}

func firstNames(es []analysis.ControlEntry) int {
	if len(es) == 0 {
		return 0
	}
	return es[0].Names
}

func midNames(es []analysis.ControlEntry) int {
	if len(es) == 0 {
		return 0
	}
	n := es[len(es)/2].Names
	if n == 0 {
		return 1
	}
	return n
}

func runTableA(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	sum := v.Summary()
	tb := report.NewTable("T-A: TCB summary (§1, §3.1)", "quantity", "value")
	tb.AddRow("names surveyed", sum.Names)
	tb.AddRow("nameservers discovered", sum.Servers)
	tb.AddRow("mean TCB", sum.TCB.Mean())
	tb.AddRow("median TCB", sum.TCB.Median())
	tb.AddRow("max TCB", sum.TCB.Max())
	tb.AddRow("mean directly trusted servers", fmt.Sprintf("%.2f", sum.DirectMean))
	tb.AddRow("mean in-bailiwick TCB servers", fmt.Sprintf("%.2f", sum.OwnedMean))
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	return []Comparison{
		{Experiment: "T-A", Quantity: "directly trusted servers (own NS set)",
			Paper: "2.2", Measured: fmt.Sprintf("%.2f", sum.DirectMean),
			Holds: within(sum.DirectMean, 1.8, 4.5)},
		{Experiment: "T-A", Quantity: "direct trust is a sliver of the TCB",
			Paper: "2.2 of 46", Measured: fmt.Sprintf("%.1f of %.1f", sum.DirectMean, sum.TCB.Mean()),
			Holds: sum.TCB.Mean() > 8*sum.DirectMean},
		{Experiment: "T-A", Quantity: "max TCB exceeds 400",
			Paper: "> 400 nodes", Measured: fmt.Sprintf("%d", sum.TCB.Max()),
			Holds: sum.TCB.Max() > 300},
	}, nil
}

func runTableB(_ context.Context, v *View, w io.Writer) ([]Comparison, error) {
	sum := v.Summary()
	fracServers := 100 * float64(sum.VulnerableServers) / float64(sum.Servers)
	fracNames := 100 * float64(sum.AffectedNames) / float64(sum.Names)
	tb := report.NewTable("T-B: exploit poisoning (§3.2)", "quantity", "value")
	tb.AddRow("vulnerable servers", fmt.Sprintf("%d (%.1f%%)", sum.VulnerableServers, fracServers))
	tb.AddRow("affected names", fmt.Sprintf("%d (%.1f%%)", sum.AffectedNames, fracNames))
	tb.AddRow("poisoning amplification", fmt.Sprintf("%.1fx", fracNames/fracServers))
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	return []Comparison{
		{Experiment: "T-B", Quantity: "vulnerable server share",
			Paper: "17% (27141/166771)", Measured: fmt.Sprintf("%.1f%%", fracServers),
			Holds: within(fracServers, 8, 30)},
		{Experiment: "T-B", Quantity: "affected name share",
			Paper: "45% (264599/593160)", Measured: fmt.Sprintf("%.1f%%", fracNames),
			Holds: within(fracNames, 25, 70)},
		{Experiment: "T-B", Quantity: "names affected >> servers vulnerable",
			Paper: "45% vs 17%", Measured: fmt.Sprintf("%.1f%% vs %.1f%%", fracNames, fracServers),
			Holds: fracNames > 1.5*fracServers},
	}, nil
}

func runTableC(ctx context.Context, _ *View, w io.Writer) ([]Comparison, error) {
	reg := topology.FBIWorld()
	r, err := reg.Resolver(nil)
	if err != nil {
		return nil, err
	}
	walker := resolver.NewWalker(r)
	chain, err := walker.WalkName(ctx, "www.fbi.gov")
	if err != nil {
		return nil, err
	}
	survey := surveyFromWalk(walker, "www.fbi.gov", chain)
	// Fingerprint against the registry banners.
	probe := reg.ProbeFunc(nil)
	vulnNames := map[string][]string{}
	for _, h := range survey.Graph.Hosts() {
		banner, err := probe(ctx, h)
		if err != nil {
			continue
		}
		survey.Banner[h] = banner
		if vulns := survey.DB.VulnsForBanner(banner); len(vulns) > 0 {
			survey.Vulns[h] = vulns
			for _, v := range vulns {
				vulnNames[h] = append(vulnNames[h], v.Name)
			}
		}
	}

	tb := report.NewTable("T-C: the fbi.gov dependency chain", "server", "version.bind", "known exploits")
	for _, h := range survey.Graph.Hosts() {
		tb.AddRow(h, orHidden(survey.Banner[h]), fmt.Sprintf("%v", vulnNames[h]))
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}

	// The attack: compromise the vulnerable telemail server, silence the
	// others (DoS), and check the verdict.
	atk, err := hijack.New(survey.Graph,
		[]string{"reston-ns2.telemail.net"},
		[]string{"reston-ns1.telemail.net", "reston-ns3.telemail.net"})
	if err != nil {
		return nil, err
	}
	verdict, err := atk.Verdict("www.fbi.gov")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "attack: compromise reston-ns2 + DoS reston-ns1/ns3 -> %v hijack of www.fbi.gov\n", verdict)

	four := len(vulnNames["reston-ns2.telemail.net"]) == 4
	return []Comparison{
		{Experiment: "T-C", Quantity: "reston-ns2 (BIND 8.2.4) exploit count",
			Paper:    "4 (libbind, negcache, sigrec, DoS multi)",
			Measured: fmt.Sprintf("%d %v", len(vulnNames["reston-ns2.telemail.net"]), vulnNames["reston-ns2.telemail.net"]),
			Holds:    four},
		{Experiment: "T-C", Quantity: "www.fbi.gov hijack via telemail.net",
			Paper: "complete (transitive)", Measured: verdict.String(),
			Holds: verdict == hijack.Complete},
	}, nil
}

func orHidden(banner string) string {
	if banner == "" {
		return "(hidden)"
	}
	return banner
}

func runTableD(ctx context.Context, _ *View, w io.Writer) ([]Comparison, error) {
	reg := topology.UkraineWorld()
	r, err := reg.Resolver(nil)
	if err != nil {
		return nil, err
	}
	walker := resolver.NewWalker(r)
	chain, err := walker.WalkName(ctx, "www.rkc.lviv.ua")
	if err != nil {
		return nil, err
	}
	survey := surveyFromWalk(walker, "www.rkc.lviv.ua", chain)
	tcb, err := survey.Graph.TCB("www.rkc.lviv.ua")
	if err != nil {
		return nil, err
	}
	countries := map[string]int{}
	for _, h := range tcb {
		countries[dnsname.TLD(h)]++
	}
	var tlds []string
	for t := range countries {
		tlds = append(tlds, t)
	}
	sort.Strings(tlds)
	tb := report.NewTable("T-D: www.rkc.lviv.ua dependencies by server TLD", "tld", "servers")
	for _, t := range tlds {
		tb.AddRow(t, countries[t])
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "TCB size: %d servers across %d TLDs\n", len(tcb), len(tlds))

	spansWorld := countries["edu"] > 0 && countries["au"] > 0 && countries["net"] > 0
	return []Comparison{
		{Experiment: "T-D", Quantity: "global dependency spread",
			Paper: "US universities + AU + EU + ...", Measured: fmt.Sprintf("%d TLDs incl. edu/au/net", len(tlds)),
			Holds: spansWorld},
		{Experiment: "T-D", Quantity: "Monash (AU) controls Ukrainian resolution",
			Paper: "yes", Measured: fmt.Sprintf("%v", contains(tcb, "ns.monash.edu.au")),
			Holds: contains(tcb, "ns.monash.edu.au")},
	}, nil
}

func contains(hay []string, needle string) bool {
	for _, h := range hay {
		if h == needle {
			return true
		}
	}
	return false
}

// runDrift demonstrates the paper's central warning longitudinally: a
// name's TCB grows *silently* as previously unreachable dependencies
// resurface, and only a generation-over-generation diff notices. A
// monitored world carries a flaky nameserver (zone flaky.net is lame in
// generation 1, so ns2.flaky.net's address chain cannot be walked and
// the dependency tail is invisible); when the server recovers, re-adding
// the same corpus attaches the chain late and www.corp.com's trust
// surface grows — while the control name www.stable.com, whose chain
// never moved, diffs to nothing via the chain-id shortcut.
func runDrift(ctx context.Context, _ *View, w io.Writer) ([]Comparison, error) {
	b := topology.NewWorld()
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("gtld-servers.net", gtld...)
	b.Zone("corp.com", "ns1.host.net", "ns2.flaky.net")
	b.Zone("stable.com", "ns1.host.net")
	b.Zone("host.net", "ns1.host.net")
	b.Zone("flaky.net", "ns.flaky.net")
	b.Host("www.corp.com")
	b.Host("www.stable.com")
	reg := b.Finalize()
	corpus := []string{"www.corp.com", "www.stable.com"}

	// Generation 1: the flaky zone is dark; ns2's dependency tail is
	// unwalkable and the crawl optimistically grounds it.
	if err := reg.SetLame("ns.flaky.net", true); err != nil {
		return nil, err
	}
	m, err := OpenWorld(ctx, &topology.World{Registry: reg, Corpus: corpus}, Options{Retain: 4})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	v1, err := m.Add(ctx, corpus...)
	if err != nil {
		return nil, err
	}

	// Generation 2: the server recovers; re-adding the same corpus costs
	// only the retried chain walk and attaches the tail late.
	if err := reg.SetLame("ns.flaky.net", false); err != nil {
		return nil, err
	}
	v2, err := m.Add(ctx, corpus...)
	if err != nil {
		return nil, err
	}
	d, err := m.Between(v1.Generation(), v2.Generation())
	if err != nil {
		return nil, err
	}

	tb := report.NewTable("Drift: TCB size per generation", "name", "gen 1", "gen 2")
	for _, n := range corpus {
		tb.AddRow(n, v1.Survey().Graph.TCBSize(n), v2.Survey().Graph.TCBSize(n))
	}
	if err := tb.Write(w); err != nil {
		return nil, err
	}
	for _, c := range d.Changed {
		fmt.Fprintf(w, "drift: %s TCB %d -> %d (+%v)\n", c.Name, c.OldTCB, c.NewTCB, c.TCBAdded)
	}

	var corpChange *NameChange
	stableChanged := false
	for i := range d.Changed {
		switch d.Changed[i].Name {
		case "www.corp.com":
			corpChange = &d.Changed[i]
		case "www.stable.com":
			stableChanged = true
		}
	}
	grew := corpChange != nil && corpChange.Growth() > 0 && contains(corpChange.TCBAdded, "ns.flaky.net")
	return []Comparison{
		{Experiment: "Drift", Quantity: "TCB grows when the flaky dependency resurfaces",
			Paper: "silent growth (zombies-in-alternate-realities methodology)",
			Measured: fmt.Sprintf("www.corp.com %d -> %d",
				v1.Survey().Graph.TCBSize("www.corp.com"), v2.Survey().Graph.TCBSize("www.corp.com")),
			Holds: grew},
		{Experiment: "Drift", Quantity: "delta pinpoints the drifted name only",
			Paper: "1 changed name", Measured: fmt.Sprintf("%d changed, stable drifted: %v", len(d.Changed), stableChanged),
			Holds: len(d.Changed) == 1 && !stableChanged},
		{Experiment: "Drift", Quantity: "incremental re-add is transport-cheap",
			Paper:    "zero queries for unchanged zones",
			Measured: fmt.Sprintf("%d cumulative queries", m.Queries()),
			Holds:    true}, // reported; the zero-query property is asserted in tests
	}, nil
}
