package dnstrust

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"dnstrust/internal/analysis"
	"dnstrust/internal/atomicio"
	"dnstrust/internal/audit"
	"dnstrust/internal/crawler"
	"dnstrust/internal/delta"
	"dnstrust/internal/hijack"
	"dnstrust/internal/mincut"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// Survey re-exports the crawl dataset type (graph, banners,
// vulnerabilities, engine stats) so callers outside the module can name
// what View.Survey and Study.Survey return.
type Survey = crawler.Survey

// QueryLog re-exports the transport query log — the recordable,
// replayable, byte-stable capture of every exchange a session performed
// — for Options.RecordLog / Options.ReplayLog.
type QueryLog = transport.Log

// Monitor is the long-lived measurement service this package is built
// around: a resident crawl engine over one world, extended incrementally
// with Add and queried through immutable, generation-stamped Views.
//
// The paper's thesis is that transitive trust must be audited
// *continuously* — TCBs drift as delegations change — and a one-shot
// batch survey cannot do that. A Monitor keeps every zone cut,
// delegation chain, and memoized query from previous batches resident,
// so Add only pays for what is genuinely new: adding names whose
// dependency structure is already walked issues zero transport queries.
//
// Concurrency model: Add and Close serialize internally (one crawl
// advances at a time); At is lock-free and may be called from any number
// of goroutines, including while an Add is in flight — it returns the
// last committed View, whose contents never change. Analysis results
// (min-cuts, per-chain TCB scans) are cached in a chain-keyed memo
// shared across generations and invalidated only for the chains a batch
// actually touched, so repeated Summary/Bottleneck passes over a large
// monitored survey are near-free.
type Monitor struct {
	world *topology.World
	eng   *crawler.Engine
	memo  *analysis.ChainMemo
	// snapshotFile is Options.SnapshotFile: the default target of
	// Snapshot() and the save-on-Close path ("" = snapshots off).
	snapshotFile string

	mu   sync.Mutex // serializes Add (and its view commit) and Close
	view atomic.Pointer[View]

	// hookMu guards hooks; OnCommit may be called while an Add is in
	// flight without deadlocking against it.
	hookMu sync.Mutex
	hooks  []func(*View)

	// tlMu guards the retained timeline. It is separate from mu so
	// Timeline/Between never block behind an in-flight crawl.
	tlMu     sync.Mutex
	retain   int
	timeline []*View
}

// Open generates a world from opts (Seed, Names sizing the corpus, as in
// NewStudy) and starts a monitoring session over it with an empty
// survey. Names are not crawled until Add.
func Open(ctx context.Context, opts Options) (*Monitor, error) {
	world, err := NewWorld(opts)
	if err != nil {
		return nil, err
	}
	return OpenWorld(ctx, world, opts)
}

// NewWorld generates the synthetic world a session with the same
// Seed/Names options would monitor, without starting a crawl. Use it
// when the transport source needs the world first — booting
// topology.StartLive over the registry, say — before OpenWorld.
func NewWorld(opts Options) (*topology.World, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Names == 0 {
		opts.Names = 20000
	}
	return topology.Generate(topology.GenParams{Seed: opts.Seed, Names: opts.Names})
}

// OpenWorld starts a monitoring session over an existing world
// (hand-built or generated). The context is reserved for future
// transport setup; opening does not crawl.
//
// The transport the session queries is composed from the options:
// the terminal is opts.Source (default: the world's in-memory direct
// transport), replaced by a replay of opts.ReplayLog when set (strict,
// or falling through to the terminal on misses); wire framing and query
// recording layer over it as middleware. The session owns the composed
// chain and closes it on Close.
func OpenWorld(_ context.Context, world *topology.World, opts Options) (*Monitor, error) {
	src := opts.Source
	if src == nil {
		src = world.Registry.Source()
	}
	if opts.ReplayLog != nil {
		if opts.ReplayFallthrough {
			src = transport.ReplayThrough(opts.ReplayLog, src)
		} else {
			// Strict replay displaces the terminal entirely, but the
			// session still owns a caller-supplied Source (a live fleet,
			// say): keep it on the chain's Close path so nothing leaks.
			if opts.Source != nil {
				src = ownedReplay{Source: transport.Replay(opts.ReplayLog), displaced: opts.Source}
			} else {
				src = transport.Replay(opts.ReplayLog)
			}
		}
	}
	if opts.WireFramed {
		src = transport.Chain(src, transport.WireFramed())
	}
	if opts.RecordLog != nil {
		src = transport.Chain(src, transport.Record(opts.RecordLog))
	}
	roots := opts.Roots
	if len(roots) == 0 {
		roots = world.Registry.RootServers()
	}
	r, err := resolver.New(src, resolver.Config{Roots: roots})
	if err != nil {
		// The session owns the composed chain from here on; an aborted
		// open must not leak it (live sockets, notably).
		return nil, errors.Join(err, src.Close())
	}
	cfg := crawler.Config{
		Workers:   opts.Workers,
		MemoFile:  opts.MemoFile,
		Progress:  opts.Progress,
		Source:    src,
		ShardName: opts.ShardName,
	}
	var eng *crawler.Engine
	if opts.SnapshotFile != "" {
		if _, serr := os.Stat(opts.SnapshotFile); serr == nil {
			eng, err = crawler.NewEngineFromSnapshot(r, world.Registry.ProbeFunc(src), cfg, opts.SnapshotFile)
		} else if !os.IsNotExist(serr) {
			err = serr
		}
		// A missing snapshot file is a fresh start, exactly like a
		// missing memo file; corrupt or future-version files fail the
		// open instead (they are never silently discarded).
	}
	if err != nil {
		return nil, errors.Join(err, src.Close())
	}
	if eng == nil {
		eng, err = crawler.NewEngine(r, world.Registry.ProbeFunc(src), cfg)
		if err != nil {
			return nil, errors.Join(err, src.Close())
		}
	}
	m := &Monitor{world: world, eng: eng, memo: analysis.NewChainMemo(),
		snapshotFile: opts.SnapshotFile, retain: max(opts.Retain, 1)}
	v := m.newView(eng.View())
	m.view.Store(v)
	m.timeline = []*View{v}
	return m, nil
}

// Add extends the survey with names and commits a new generation,
// returning its View. Names already surveyed are absorbed from the
// walker's caches without transport traffic; names under already-walked
// zones pay only for their own new labels. On error (cancellation,
// worker failure) nothing is committed: At keeps answering from the
// previous generation, and a retried Add resumes from everything the
// walker already learned.
func (m *Monitor) Add(ctx context.Context, names ...string) (*View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.view.Load()
	//lint:allow locksafety m.mu exists to serialize Add/Close; holding it across the crawl is the point (reads go through m.view, never m.mu)
	s, err := m.eng.Add(ctx, names...)
	if err != nil {
		return nil, err
	}
	if s == prev.survey {
		return prev, nil // empty Add: no new generation
	}
	m.memo.Advance(prev.survey, s)
	v := m.newView(s)
	// The view pointer and the timeline commit inside one critical
	// section: anyone who observed the new generation via At() and then
	// asks the timeline is guaranteed to find it there (Timeline/Between
	// block on tlMu until both updates are visible).
	m.tlMu.Lock()
	m.view.Store(v)
	m.timeline = append(m.timeline, v)
	evicted := len(m.timeline) > m.retain
	if evicted {
		m.timeline = append([]*View(nil), m.timeline[len(m.timeline)-m.retain:]...)
	}
	oldest := m.timeline[0]
	m.tlMu.Unlock()
	if evicted {
		// Keep the store's history bounded by the retention window: no
		// retained view diffs from below the oldest one, so older change
		// journals can go. A caller still holding an evicted view gets
		// the by-name diff path — correct, just not the shortcut.
		m.eng.PruneJournal(oldest.survey.Graph.Epoch())
	}
	m.hookMu.Lock()
	hooks := m.hooks
	m.hookMu.Unlock()
	for _, fn := range hooks {
		fn(v)
	}
	return v, nil
}

// OnCommit registers fn to run synchronously after every generation
// commit, with the freshly committed View, in registration order and
// still inside Add's critical section — when Add returns, every hook
// has observed the generation it committed. Hooks must not call Add or
// Close (they would deadlock) and should be quick: the serving-side
// verdict cache wires its invalidation here. OnCommit may be called at
// any time; it does not fire for generations committed before
// registration.
func (m *Monitor) OnCommit(fn func(*View)) {
	m.hookMu.Lock()
	m.hooks = append(m.hooks, fn)
	m.hookMu.Unlock()
}

// Timeline returns the retained committed generations, oldest to newest
// (the newest is always At()'s view). The bound is Options.Retain;
// retained Views share the survey's storage copy-on-write, so a long
// timeline costs little beyond its per-generation analysis results.
// Timeline never blocks behind an in-flight Add.
func (m *Monitor) Timeline() []*View {
	m.tlMu.Lock()
	defer m.tlMu.Unlock()
	return append([]*View(nil), m.timeline...)
}

// Between computes the typed trust delta from generation from to
// generation to. Both must still be retained (Options.Retain bounds the
// history; Timeline lists what is available). Diffing a generation
// against itself returns an empty delta.
func (m *Monitor) Between(from, to int64) (*Delta, error) {
	return m.BetweenContext(context.Background(), from, to)
}

// BetweenContext is Between honoring ctx: cancellation is checked
// between the per-chain min-cut computations of a large delta.
func (m *Monitor) BetweenContext(ctx context.Context, from, to int64) (*Delta, error) {
	if from > to {
		return nil, fmt.Errorf("dnstrust: Between(%d, %d): from exceeds to", from, to)
	}
	var vf, vt *View
	m.tlMu.Lock()
	lo, hi := int64(-1), int64(-1)
	for _, v := range m.timeline {
		g := v.Generation()
		if lo < 0 {
			lo = g
		}
		hi = g
		if g == from {
			vf = v
		}
		if g == to {
			vt = v
		}
	}
	m.tlMu.Unlock()
	if vf == nil || vt == nil {
		return nil, fmt.Errorf("dnstrust: generations %d..%d not retained (timeline holds %d..%d; raise Options.Retain)", from, to, lo, hi)
	}
	return vt.DiffContext(ctx, vf)
}

// At returns the latest committed View. It never blocks: during an
// in-flight Add it returns the previous generation. The returned View is
// immutable and safe to query from any goroutine indefinitely.
func (m *Monitor) At() *View { return m.view.Load() }

// World returns the monitored world (registry and corpus).
func (m *Monitor) World() *topology.World { return m.world }

// Generation reports the latest committed generation (0 before the
// first successful Add). It reads the committed view — never the
// engine's internal counter, which during an in-flight Add can already
// name a generation that At() does not serve yet.
func (m *Monitor) Generation() int64 { return m.view.Load().Generation() }

// Queries reports the cumulative transport queries issued across all
// Adds — the counter behind the memoization guarantee.
func (m *Monitor) Queries() int { return m.eng.Queries() }

// WriteSnapshot serializes the session's resident state — the epoch
// store behind every committed generation, plus banners and the
// generation counter — as one binary snapshot on w. It runs exactly
// between Adds (the engine serializes internally); reads are never
// blocked. Prefer Snapshot/SaveSnapshot for files: they write
// atomically, so an interrupt mid-save never leaves a loadable partial
// snapshot.
func (m *Monitor) WriteSnapshot(w io.Writer) error {
	return m.eng.WriteSnapshot(w)
}

// SaveSnapshot atomically writes the session snapshot to path
// (write-to-temp, fsync, rename — a kill mid-save leaves the previous
// file intact) and returns its size in bytes. A session reopened with
// Options.SnapshotFile naming this file resumes at the saved generation
// with zero transport queries.
func (m *Monitor) SaveSnapshot(path string) (int64, error) {
	return atomicio.WriteFile(path, m.WriteSnapshot)
}

// Snapshot saves the session snapshot to Options.SnapshotFile and
// returns its size in bytes. It errors when the session was opened
// without a snapshot file; use SaveSnapshot to name an explicit path.
func (m *Monitor) Snapshot() (int64, error) {
	if m.snapshotFile == "" {
		return 0, errors.New("dnstrust: Snapshot: no Options.SnapshotFile configured")
	}
	return m.SaveSnapshot(m.snapshotFile)
}

// Close ends the session's write side: the session snapshot is saved
// (when Options.SnapshotFile is set), the query memo is persisted (when
// Options.MemoFile is set) and released, and further Adds fail. Every
// committed View remains fully queryable.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var snapErr error
	if m.snapshotFile != "" {
		//lint:allow locksafety final save must exclude a racing Add; m.mu is the session serializer and reads never take it
		_, snapErr = m.SaveSnapshot(m.snapshotFile)
	}
	//lint:allow locksafety Engine.Close flushes under the same serializer so no Add can interleave with teardown
	return errors.Join(snapErr, m.eng.Close())
}

func (m *Monitor) newView(s *crawler.Survey) *View {
	return &View{world: m.world, survey: s, memo: m.memo}
}

// ownedReplay is a strict replay source that also owns the terminal it
// displaced, honoring Options.Source's close-on-Close contract.
type ownedReplay struct {
	transport.Source
	displaced transport.Source
}

func (o ownedReplay) Close() error {
	return errors.Join(o.Source.Close(), o.displaced.Close())
}

// View is one committed generation of a monitored survey: an immutable
// dependency graph plus the full read API of the paper's analyses. All
// methods are safe for concurrent use, and everything a View returns
// stays valid forever — later Adds commit new Views instead of mutating
// old ones (snapshot isolation).
//
// Whole-survey analyses (Summary, Bottlenecks) are computed once per
// View and cached; per-chain work inside them is additionally served
// from the Monitor's chain memo, which persists across generations, so
// on a View taken after a small Add both are near-free.
//
//lint:immutable
type View struct {
	world  *topology.World
	survey *crawler.Survey
	memo   *analysis.ChainMemo

	summaryOnce sync.Once
	summary     *analysis.Summary

	botMu    sync.Mutex
	botStats *analysis.BottleneckStats
}

// Generation reports which Add committed this view (0 = the empty
// pre-crawl view).
func (v *View) Generation() int64 { return v.survey.Stats.Generation }

// Survey exposes the underlying crawl dataset (graph, banners,
// vulnerabilities, engine stats). It is immutable.
func (v *View) Survey() *crawler.Survey { return v.survey }

// Names lists the successfully surveyed names, sorted. The slice is a
// defensive copy: callers may keep or modify it freely. Use NumNames
// when only the count is needed.
func (v *View) Names() []string { return append([]string(nil), v.survey.Names...) }

// NumNames reports the number of successfully surveyed names without
// copying the name list.
func (v *View) NumNames() int { return v.survey.Graph.NumNames() }

// Popular is the world's redundancy-seeking "popular site" subset (the
// paper's Alexa top 500), independent of what has been surveyed so far.
// The slice is a defensive copy.
func (v *View) Popular() []string { return append([]string(nil), v.world.Popular...) }

// Diff computes the typed trust delta from an older view to this one:
// what drifted — TCB members gained and lost per name, bottleneck
// min-cuts reshaped, zones and chains appearing or vanishing, zombie
// dependencies left behind. Views committed by the same Monitor diff
// incrementally off the shared store's interned ids and epoch stamps
// (identical chains cost nothing); views from unrelated sessions — two
// replayed recordings, say — are compared by name, which is also where
// zombies can surface.
func (v *View) Diff(older *View) (*Delta, error) {
	return v.DiffContext(context.Background(), older)
}

// DiffContext is Diff honoring ctx: cancellation is checked between the
// per-chain min-cut computations of a large delta, so an abandoned
// request stops burning CPU.
func (v *View) DiffContext(ctx context.Context, older *View) (*Delta, error) {
	if older == nil {
		return nil, errors.New("dnstrust: Diff of a nil view")
	}
	return delta.Compute(ctx, older.survey, v.survey,
		delta.Options{OldMemo: older.memo, NewMemo: v.memo})
}

// TCB returns the trusted computing base of a surveyed name.
func (v *View) TCB(name string) ([]string, error) {
	return v.survey.Graph.TCB(name)
}

// DOT renders a surveyed name's delegation graph in Graphviz format.
func (v *View) DOT(name string) (string, error) {
	return v.survey.Graph.DOT(name)
}

// Summary computes the headline statistics over this view's whole
// corpus. The result is computed once per View (per-chain scans served
// from the cross-generation memo) and shared — treat it as read-only.
func (v *View) Summary() *analysis.Summary {
	v.summaryOnce.Do(func() {
		v.summary = analysis.SummarizeMemo(v.survey, v.survey.Names, v.memo)
	})
	return v.summary
}

// Bottleneck runs the §3.2 min-cut analysis for one name, served from
// the chain memo when any name sharing the delegation chain was already
// analyzed in this or an untouched earlier generation.
func (v *View) Bottleneck(name string) (*mincut.Result, error) {
	return analysis.BottleneckOfMemo(v.survey, name, v.memo)
}

// Bottlenecks runs the Figure 7 min-cut analysis over the whole corpus.
// A successful result is computed once per View and shared (treat it as
// read-only); per-chain cuts additionally persist in the memo across
// generations. Errors — a cancelled ctx, typically — are never cached:
// a later call with a live context recomputes, resuming from whatever
// per-chain results the aborted pass already stored.
func (v *View) Bottlenecks(ctx context.Context) (*analysis.BottleneckStats, error) {
	v.botMu.Lock()
	defer v.botMu.Unlock()
	if v.botStats != nil {
		return v.botStats, nil
	}
	stats, err := analysis.BottlenecksMemo(ctx, v.survey, v.survey.Names, 0, v.memo)
	if err != nil {
		return nil, err
	}
	v.botStats = stats
	return stats, nil
}

// Attack builds a hijack scenario with the given compromised and downed
// servers against this view's dependency graph.
func (v *View) Attack(compromised, downed []string) (*hijack.Attack, error) {
	return hijack.New(v.survey.Graph, compromised, downed)
}

// Audit runs the §5 diligence check on a surveyed name: where its trust
// goes and which dependencies are dangerous.
func (v *View) Audit(name string) ([]audit.Finding, error) {
	return audit.Name(v.survey, name, audit.Policy{})
}
