// The longitudinal read surface: typed trust deltas between committed
// generations, and the three-line drift study — crawl the same corpus at
// two times through Record, then diff the recordings offline.
package dnstrust

import (
	"context"
	"errors"
	"fmt"

	"dnstrust/internal/delta"
	"dnstrust/internal/topology"
)

// Delta re-exports the typed trust delta between two survey generations:
// per-name TCB hosts added and removed, bottleneck min-cut shrinkage and
// growth, new and vanished zones and chains, and zombie dependencies.
// Produce one with Monitor.Between, View.Diff, or DiffLogs.
type Delta = delta.Delta

// NameChange re-exports one name's trust-surface movement.
type NameChange = delta.NameChange

// ZoneChange re-exports one zone's NS-set drift between independent
// crawls.
type ZoneChange = delta.ZoneChange

// Zombie re-exports one stale dependency: a host still inside some
// name's TCB whose delegation was removed, or that stopped answering,
// between the compared generations.
type Zombie = delta.Zombie

// ZombieKind re-exports the zombie classification.
type ZombieKind = delta.ZombieKind

// Zombie classifications.
const (
	DelegationRemoved = delta.DelegationRemoved
	StoppedAnswering  = delta.StoppedAnswering
)

// DiffLogs replays two recorded query logs — two crawls of the same
// corpus at different times — through strict Replay sources and diffs
// the resulting views, making "record now, record later, diff" a
// three-line drift study:
//
//	d, err := dnstrust.DiffLogs(ctx, then, now, dnstrust.Options{Names: 20000})
//	for _, z := range d.Zombies { fmt.Println(z.Host, z.Kind, z.Names) }
//
// Both replays are strict: every query is served from its log through
// the wire codec and a query the log cannot answer fails that name's
// walk, so the diff touches no terminal transport at all — zero live
// queries, by construction. Names resolvable in only one recording
// surface as NamesAdded/NamesRemoved; delegation changes surface as
// ZoneChanges, per-name TCB/min-cut drift, and — when a dropped host is
// still trusted through another delegation — Zombies.
//
// The corpus replayed is opts.Corpus when set, else the corpus of the
// world generated from opts (Seed, Names), which matches what dnssurvey
// -record crawled with the same flags. When both opts.Corpus and
// opts.Roots are set, no world is generated at all — recordings of
// hand-built worlds diff hermetically.
func DiffLogs(ctx context.Context, oldLog, newLog *QueryLog, opts Options) (*Delta, error) {
	if oldLog == nil || newLog == nil {
		return nil, errors.New("dnstrust: DiffLogs needs two recorded logs")
	}
	if len(opts.Corpus) > 0 && len(opts.Roots) == 0 {
		// Without roots the replays would descend from a generated
		// world's root servers, miss on every recorded query, and
		// produce a meaningless empty delta.
		return nil, errors.New("dnstrust: Options.Corpus requires Options.Roots (the recorded world's root hints)")
	}
	var world *topology.World
	if len(opts.Corpus) > 0 && len(opts.Roots) > 0 {
		reg := topology.NewRegistry()
		if err := reg.Finalize(); err != nil {
			return nil, err
		}
		world = &topology.World{Registry: reg, Corpus: opts.Corpus}
	} else {
		// No corpus override (Corpus with Roots took the branch above;
		// Corpus without Roots already errored): replay the generated
		// world's own corpus, matching what -record crawled with the
		// same Seed/Names.
		w, err := NewWorld(opts)
		if err != nil {
			return nil, err
		}
		world = w
	}

	replay := func(lg *QueryLog) (*View, error) {
		m, err := OpenWorld(ctx, world, Options{
			Workers:   opts.Workers,
			Roots:     opts.Roots,
			ReplayLog: lg,
			Progress:  opts.Progress,
		})
		if err != nil {
			return nil, err
		}
		v, addErr := m.Add(ctx, world.Corpus...)
		closeErr := m.Close()
		if addErr != nil {
			return nil, errors.Join(addErr, closeErr)
		}
		return v, closeErr
	}

	older, err := replay(oldLog)
	if err != nil {
		return nil, fmt.Errorf("dnstrust: replaying older log: %w", err)
	}
	newer, err := replay(newLog)
	if err != nil {
		return nil, fmt.Errorf("dnstrust: replaying newer log: %w", err)
	}
	d, err := newer.DiffContext(ctx, older)
	if err != nil {
		return nil, err
	}
	if d.Compared == 0 {
		// Nothing resolved in either recording: the logs cannot answer
		// this corpus at all (wrong Seed/Names, or roots from another
		// world) — an empty delta here would be a silent false negative.
		return nil, errors.New("dnstrust: no corpus name resolved in either recording — were the logs recorded with the same corpus (Seed/Names) and roots?")
	}
	return d, nil
}
