package dnstrust

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// The study is expensive; build it once for the whole test binary.
var (
	studyOnce sync.Once
	testStudy *Study
	studyErr  error
)

func sharedStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		testStudy, studyErr = NewStudy(context.Background(), Options{Seed: 1, Names: 6000})
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return testStudy
}

func TestNewStudyDefaults(t *testing.T) {
	s := sharedStudy(t)
	if len(s.Survey.Names) == 0 {
		t.Fatal("no names surveyed")
	}
	if len(s.Survey.Failed) != 0 {
		for n, err := range s.Survey.Failed {
			t.Errorf("failed walk %s: %v", n, err)
		}
	}
	if got := len(s.Survey.Names); got != len(s.World.Corpus) {
		t.Errorf("surveyed %d of %d corpus names", got, len(s.World.Corpus))
	}
}

func TestStudyFacade(t *testing.T) {
	s := sharedStudy(t)
	name := s.Survey.Names[0]
	tcb, err := s.TCB(name)
	if err != nil || len(tcb) == 0 {
		t.Fatalf("TCB(%s) = %v, %v", name, tcb, err)
	}
	dot, err := s.DOT(name)
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Fatalf("DOT: %v", err)
	}
	sum := s.Summary()
	if sum.Names == 0 || sum.TCB.Mean() <= 0 {
		t.Fatal("summary empty")
	}
	res, err := s.Bottleneck(name)
	if err != nil || res.Size < 1 {
		t.Fatalf("Bottleneck: %+v, %v", res, err)
	}
	atk, err := s.Attack(res.Cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := atk.Verdict(name)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "complete" {
		t.Errorf("compromising the min-cut of %s gave %v, want complete", name, v)
	}
}

// TestRunAllExperiments is the reproduction gate: every experiment must
// run, and every paper-vs-measured shape claim must hold at this scale.
func TestRunAllExperiments(t *testing.T) {
	s := sharedStudy(t)
	var buf bytes.Buffer
	rows, err := RunAll(context.Background(), s.View(), &buf)
	if err != nil {
		t.Fatalf("RunAll: %v\noutput so far:\n%s", err, buf.String())
	}
	if len(rows) < 25 {
		t.Errorf("only %d comparison rows", len(rows))
	}
	for _, c := range rows {
		if !c.Holds {
			t.Errorf("%s / %s: paper %q measured %q — shape does NOT hold",
				c.Experiment, c.Quantity, c.Paper, c.Measured)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 7", "T-C", "fbi.gov",
		"Paper vs measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("%d experiments, want 14 (9 figures + 4 tables + drift)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, err := NewStudy(context.Background(), Options{Seed: 9, Names: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(context.Background(), Options{Seed: 9, Names: 300, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Survey.Names) != len(b.Survey.Names) {
		t.Fatal("name counts differ")
	}
	for i := range a.Survey.Names {
		if a.Survey.Names[i] != b.Survey.Names[i] {
			t.Fatal("names differ")
		}
		if a.Survey.Graph.TCBSize(a.Survey.Names[i]) != b.Survey.Graph.TCBSize(b.Survey.Names[i]) {
			t.Fatal("TCB sizes differ")
		}
	}
}

func TestWireFramedStudyMatchesDirect(t *testing.T) {
	direct, err := NewStudy(context.Background(), Options{Seed: 11, Names: 200})
	if err != nil {
		t.Fatal(err)
	}
	wired, err := NewStudy(context.Background(), Options{Seed: 11, Names: 200, WireFramed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Survey.Names) != len(wired.Survey.Names) {
		t.Fatal("name counts differ between transports")
	}
	for _, n := range direct.Survey.Names {
		if direct.Survey.Graph.TCBSize(n) != wired.Survey.Graph.TCBSize(n) {
			t.Fatalf("TCB(%s) differs between direct and wire-framed transports", n)
		}
	}
}
